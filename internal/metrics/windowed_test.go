package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistSnapshotDelta(t *testing.T) {
	var h LockFreeHistogram
	for i := 0; i < 100; i++ {
		h.Observe(1000) // bucket of 1000
	}
	s1 := h.Snapshot()
	if s1.N != 100 {
		t.Fatalf("snapshot N = %d", s1.N)
	}
	for i := 0; i < 50; i++ {
		h.Observe(100_000) // much larger bucket
	}
	s2 := h.Snapshot()
	d := s2.Delta(s1)
	if d.N != 50 {
		t.Fatalf("delta N = %d, want 50", d.N)
	}
	// The delta contains only the 100k observations: its median must sit in
	// the 100k bucket, far above the 1000-valued lifetime majority.
	if q := d.Quantile(0.5); q < 65536 || q > 131071 {
		t.Fatalf("delta p50 = %d, want within the 100k bucket [65536, 131071]", q)
	}
	// The lifetime median, by contrast, still sits at 1000.
	if q := s2.Quantile(0.5); q > 2000 {
		t.Fatalf("lifetime p50 = %d, want ~1000", q)
	}
	// Delta of identical snapshots is empty and yields zero quantiles.
	empty := s2.Delta(s2)
	if empty.N != 0 || empty.Quantile(0.99) != 0 {
		t.Fatalf("self-delta not empty: N=%d q99=%d", empty.N, empty.Quantile(0.99))
	}
	// Crossed snapshots clamp rather than wrap.
	crossed := s1.Delta(s2)
	if crossed.N != 0 {
		t.Fatalf("crossed delta N = %d, want 0", crossed.N)
	}
}

func TestHistSnapshotDeltaDuration(t *testing.T) {
	var h LockFreeHistogram
	h.ObserveDuration(10 * time.Millisecond)
	prev := h.Snapshot()
	for i := 0; i < 20; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	d := h.Snapshot().Delta(prev)
	if q := d.QuantileDuration(0.95); q > 4*time.Millisecond {
		t.Fatalf("delta p95 = %v, want ~1ms bucket (old 10ms sample must not leak in)", q)
	}
}

// fakeClock drives a WindowedHistogram deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestWindowed(interval time.Duration) (*WindowedHistogram, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := NewWindowedHistogram(interval)
	w.now = clk.now
	w.curStart.Store(clk.now().UnixNano())
	return w, clk
}

// TestWindowedForgetsOutliers is the core property the hedged-read fix
// depends on: a huge startup outlier must stop influencing the quantile
// after two window rotations, where a lifetime histogram would keep it
// forever.
func TestWindowedForgetsOutliers(t *testing.T) {
	w, clk := newTestWindowed(100 * time.Millisecond)
	w.ObserveDuration(500 * time.Millisecond) // cold-start outlier
	for i := 0; i < 50; i++ {
		w.ObserveDuration(time.Millisecond)
	}
	// Same window: the outlier caps the p100 and inflates the max.
	if q := w.QuantileDuration(1.0); q < 200*time.Millisecond {
		t.Fatalf("in-window p100 = %v, outlier should dominate", q)
	}
	// One rotation: outlier is in the previous window, still visible.
	clk.advance(110 * time.Millisecond)
	for i := 0; i < 50; i++ {
		w.ObserveDuration(time.Millisecond)
	}
	if q := w.QuantileDuration(1.0); q < 200*time.Millisecond {
		t.Fatalf("after one rotation p100 = %v, outlier should still be visible", q)
	}
	// Second rotation: outlier aged out entirely.
	clk.advance(110 * time.Millisecond)
	for i := 0; i < 50; i++ {
		w.ObserveDuration(time.Millisecond)
	}
	if q := w.QuantileDuration(1.0); q > 4*time.Millisecond {
		t.Fatalf("after two rotations p100 = %v, outlier must be forgotten", q)
	}
	if q := w.QuantileDuration(0.95); q > 4*time.Millisecond {
		t.Fatalf("after two rotations p95 = %v, want ~1ms", q)
	}
}

func TestWindowedIdleGapClearsBoth(t *testing.T) {
	w, clk := newTestWindowed(100 * time.Millisecond)
	for i := 0; i < 50; i++ {
		w.Observe(1 << 20)
	}
	if w.Count() != 50 {
		t.Fatalf("count = %d", w.Count())
	}
	// A long idle gap (> 2 intervals) must clear everything.
	clk.advance(time.Second)
	if w.Count() != 0 {
		t.Fatalf("count after idle gap = %d, want 0", w.Count())
	}
	if q := w.Quantile(0.95); q != 0 {
		t.Fatalf("quantile after idle gap = %d, want 0", q)
	}
	// Fresh observations start a clean window.
	w.Observe(100)
	if w.Count() != 1 {
		t.Fatalf("count = %d after fresh observe", w.Count())
	}
}

func TestWindowedEmptyAndDefaults(t *testing.T) {
	w := NewWindowedHistogram(0) // default interval
	if w.interval != time.Second {
		t.Fatalf("default interval = %v", w.interval)
	}
	if w.Count() != 0 || w.Quantile(0.95) != 0 || w.QuantileDuration(0.5) != 0 {
		t.Fatal("empty windowed histogram not zero")
	}
	w.Observe(-5) // clamps, doesn't panic
	if w.Count() != 1 {
		t.Fatalf("count = %d", w.Count())
	}
}

func TestWindowedConcurrent(t *testing.T) {
	w, clk := newTestWindowed(5 * time.Millisecond)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.ObserveDuration(time.Millisecond)
				_ = w.QuantileDuration(0.95)
			}
		}()
	}
	// Drive rotations from a fifth goroutine while observers hammer.
	for i := 0; i < 50; i++ {
		clk.advance(3 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	// No assertion beyond absence of races/panics; quantile must be sane.
	if q := w.QuantileDuration(0.5); q > 4*time.Millisecond {
		t.Fatalf("p50 = %v, want ~1ms", q)
	}
}
