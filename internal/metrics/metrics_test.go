package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if p := h.Percentile(50); p != 50*time.Millisecond {
		t.Fatalf("p50 %v", p)
	}
	if p := h.Percentile(95); p != 95*time.Millisecond {
		t.Fatalf("p95 %v", p)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max %v", h.Max())
	}
	if m := h.Mean(); m != 50500*time.Microsecond {
		t.Fatalf("mean %v", m)
	}
	if h.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10)
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramReservoir(t *testing.T) {
	h := NewHistogram(128)
	for i := 0; i < 100000; i++ {
		h.Record(time.Duration(i%1000) * time.Microsecond)
	}
	if h.Count() != 100000 {
		t.Fatalf("count %d", h.Count())
	}
	// The reservoir percentile should approximate the true median (~500µs).
	p := h.Percentile(50)
	if p < 300*time.Microsecond || p > 700*time.Microsecond {
		t.Fatalf("reservoir p50 %v far from 500µs", p)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries()
	s.Add(1)
	s.Add(5)
	s.Add(3)
	pts := s.Points()
	if len(pts) != 3 || pts[1].Value != 5 {
		t.Fatalf("points %+v", pts)
	}
	if s.Max() != 5 {
		t.Fatalf("max %v", s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean %v", s.Mean())
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At < pts[i-1].At {
			t.Fatal("timestamps not monotonic")
		}
	}
	empty := NewSeries()
	if empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty series not zero")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatal("fresh counter not zero")
	}
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("count %d, want 5", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 805 {
		t.Fatalf("count %d, want 805", got)
	}
}
