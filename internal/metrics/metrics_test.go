package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if p := h.Percentile(50); p != 50*time.Millisecond {
		t.Fatalf("p50 %v", p)
	}
	if p := h.Percentile(95); p != 95*time.Millisecond {
		t.Fatalf("p95 %v", p)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max %v", h.Max())
	}
	if m := h.Mean(); m != 50500*time.Microsecond {
		t.Fatalf("mean %v", m)
	}
	if h.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10)
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestHistogramReservoir(t *testing.T) {
	h := NewHistogram(128)
	for i := 0; i < 100000; i++ {
		h.Record(time.Duration(i%1000) * time.Microsecond)
	}
	if h.Count() != 100000 {
		t.Fatalf("count %d", h.Count())
	}
	// The reservoir percentile should approximate the true median (~500µs).
	p := h.Percentile(50)
	if p < 300*time.Microsecond || p > 700*time.Microsecond {
		t.Fatalf("reservoir p50 %v far from 500µs", p)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestLockFreeHistogramBasics(t *testing.T) {
	var h LockFreeHistogram
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("fresh histogram not zero")
	}
	for _, v := range []int64{1, 2, 4, 8, 16} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 31 || h.Max() != 16 {
		t.Fatalf("count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	if m := h.Mean(); m != 31.0/5 {
		t.Fatalf("mean %v", m)
	}
	// Negative observations clamp to zero rather than corrupting buckets.
	h.Observe(-5)
	if h.Count() != 6 || h.Sum() != 31 {
		t.Fatalf("after negative: count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestLockFreeHistogramQuantiles(t *testing.T) {
	var h LockFreeHistogram
	// 1000 values uniform in [0, 1000): the power-of-two buckets give
	// factor-of-two resolution, so check the estimates land in the right
	// bucket range rather than exactly.
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	p50 := h.Quantile(0.50)
	if p50 < 256 || p50 > 1023 {
		t.Fatalf("p50 %d outside the bucket containing the true median ~500", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 512 || p99 > 999 {
		t.Fatalf("p99 %d outside [512, 999]", p99)
	}
	if p99 < p50 {
		t.Fatalf("quantiles not monotone: p50=%d p99=%d", p50, p99)
	}
	if h.Quantile(1.0) > h.Max() {
		t.Fatalf("p100 %d above max %d", h.Quantile(1.0), h.Max())
	}
}

func TestLockFreeHistogramDurations(t *testing.T) {
	var h LockFreeHistogram
	for i := 0; i < 100; i++ {
		h.ObserveDuration(85 * time.Millisecond)
	}
	// All samples in one bucket: every quantile reports that bucket's
	// midpoint, clamped to max.
	p50, p99 := h.QuantileDuration(0.50), h.QuantileDuration(0.99)
	if p50 != p99 {
		t.Fatalf("single-bucket quantiles differ: p50=%v p99=%v", p50, p99)
	}
	if p50 < 64*time.Millisecond || p50 > 128*time.Millisecond {
		t.Fatalf("p50 %v outside the 64–128ms bucket", p50)
	}
}

func TestLockFreeHistogramConcurrent(t *testing.T) {
	var h LockFreeHistogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(1); i <= 1000; i++ {
				h.Observe(i)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count %d, want 8000", h.Count())
	}
	if h.Sum() != 8*1000*1001/2 {
		t.Fatalf("sum %d", h.Sum())
	}
	if h.Max() != 1000 {
		t.Fatalf("max %d", h.Max())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries()
	s.Add(1)
	s.Add(5)
	s.Add(3)
	pts := s.Points()
	if len(pts) != 3 || pts[1].Value != 5 {
		t.Fatalf("points %+v", pts)
	}
	if s.Max() != 5 {
		t.Fatalf("max %v", s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean %v", s.Mean())
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].At < pts[i-1].At {
			t.Fatal("timestamps not monotonic")
		}
	}
	empty := NewSeries()
	if empty.Max() != 0 || empty.Mean() != 0 {
		t.Fatal("empty series not zero")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatal("fresh counter not zero")
	}
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("count %d, want 5", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 805 {
		t.Fatalf("count %d, want 805", got)
	}
}

func TestLockFreeHistogramQuantileEmpty(t *testing.T) {
	var h LockFreeHistogram
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("empty histogram q%.2f = %d", q, v)
		}
	}
	if h.Mean() != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
}

func TestLockFreeHistogramQuantileSingleSample(t *testing.T) {
	var h LockFreeHistogram
	h.Observe(777)
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1.0} {
		v := h.Quantile(q)
		// One sample: every quantile must land in its factor-of-two bucket,
		// clamped by max — so the estimate can never exceed the sample.
		if v < 512 || v > 777 {
			t.Fatalf("single-sample q%.2f = %d, want within [512, 777]", q, v)
		}
	}
	var z LockFreeHistogram
	z.Observe(0)
	if v := z.Quantile(0.99); v != 0 {
		t.Fatalf("single zero sample q99 = %d", v)
	}
}

func TestLockFreeHistogramOverflowBucket(t *testing.T) {
	var h LockFreeHistogram
	// The top bucket (bit length 64) holds values >= 1<<63; the quantile
	// walk must clamp hi to max rather than overflow.
	huge := int64(1<<63 - 1) // max int64: bits.Len64 = 63 -> bucket 63
	h.Observe(huge)
	if v := h.Quantile(0.99); v > uint64(huge) || v < 1<<62 {
		t.Fatalf("q99 of max-int64 sample = %d", v)
	}
	if h.Max() != uint64(huge) {
		t.Fatalf("max %d", h.Max())
	}
	// Negative values clamp to zero instead of wrapping into the top bucket.
	h.Observe(-5)
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
	if v := h.Quantile(0.25); v != 0 {
		t.Fatalf("clamped negative should land in bucket 0, q25 = %d", v)
	}
}

func TestLockFreeHistogramQuantileMonotone(t *testing.T) {
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 { // xorshift: deterministic random fill
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 20; trial++ {
		var h LockFreeHistogram
		n := int(next()%1000) + 1
		for i := 0; i < n; i++ {
			h.Observe(int64(next() % 10_000_000))
		}
		p50, p95, p99 := h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
		if p50 > p95 || p95 > p99 {
			t.Fatalf("trial %d (n=%d): p50=%d p95=%d p99=%d not monotone", trial, n, p50, p95, p99)
		}
		if p99 > h.Max() {
			t.Fatalf("trial %d: p99=%d above max=%d", trial, p99, h.Max())
		}
	}
}

func TestHistogramPercentileMonotoneRandom(t *testing.T) {
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for trial := 0; trial < 10; trial++ {
		h := NewHistogram(0)
		n := int(next()%500) + 1
		for i := 0; i < n; i++ {
			h.Record(time.Duration(next()%1_000_000) * time.Nanosecond)
		}
		p50, p95, p99 := h.Percentile(50), h.Percentile(95), h.Percentile(99)
		if p50 > p95 || p95 > p99 {
			t.Fatalf("trial %d (n=%d): p50=%v p95=%v p99=%v not monotone", trial, n, p50, p95, p99)
		}
	}
}
