package objstore

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestPutGetVersions(t *testing.T) {
	s := New()
	if v := s.Put("k", []byte("v1")); v != 1 {
		t.Fatalf("first version %d", v)
	}
	if v := s.Put("k", []byte("v2")); v != 2 {
		t.Fatalf("second version %d", v)
	}
	got, err := s.Get("k")
	if err != nil || string(got) != "v2" {
		t.Fatalf("get: %q %v", got, err)
	}
	old, err := s.GetVersion("k", 1)
	if err != nil || string(old) != "v1" {
		t.Fatalf("get v1: %q %v", old, err)
	}
	if _, err := s.GetVersion("k", 3); !errors.Is(err, ErrVersion) {
		t.Fatalf("missing version: %v", err)
	}
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if s.Versions("k") != 2 {
		t.Fatal("version count")
	}
}

func TestDataIsolation(t *testing.T) {
	s := New()
	src := []byte("abc")
	s.Put("k", src)
	src[0] = 'z'
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatal("Put aliased caller buffer")
	}
	got[0] = 'q'
	again, _ := s.Get("k")
	if string(again) != "abc" {
		t.Fatal("Get returned shared buffer")
	}
}

func TestGetAsOf(t *testing.T) {
	s := New()
	now := time.Unix(1000, 0)
	s.SetClock(func() time.Time { return now })
	s.Put("k", []byte("a"))
	now = time.Unix(2000, 0)
	s.Put("k", []byte("b"))

	data, id, err := s.GetAsOf("k", time.Unix(1500, 0))
	if err != nil || string(data) != "a" || id != 1 {
		t.Fatalf("as-of 1500: %q id=%d err=%v", data, id, err)
	}
	data, id, err = s.GetAsOf("k", time.Unix(2000, 0))
	if err != nil || string(data) != "b" || id != 2 {
		t.Fatalf("as-of 2000: %q id=%d err=%v", data, id, err)
	}
	if _, _, err := s.GetAsOf("k", time.Unix(500, 0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("as-of before first write: %v", err)
	}
}

func TestListAndDelete(t *testing.T) {
	s := New()
	s.Put("seg/1/log", nil)
	s.Put("seg/1/pages", nil)
	s.Put("seg/2/log", nil)
	s.Put("other", nil)
	got := s.List("seg/")
	want := []string{"seg/1/log", "seg/1/pages", "seg/2/log"}
	if len(got) != len(want) {
		t.Fatalf("list %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("list %v, want %v", got, want)
		}
	}
	s.Delete("seg/1/log")
	s.Delete("seg/1/log") // idempotent
	if len(s.List("seg/1/log")) != 0 {
		t.Fatal("delete failed")
	}
}

func TestStatsAndConcurrency(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := string(rune('a' + w))
			for i := 0; i < 100; i++ {
				s.Put(key, bytes.Repeat([]byte{byte(i)}, 10))
				if _, err := s.Get(key); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	puts, gets, b := s.Stats()
	if puts != 800 || gets != 800 || b != 8000 {
		t.Fatalf("stats %d %d %d", puts, gets, b)
	}
}
