// Package objstore simulates the S3-style object store Aurora uses as the
// durability sink for continuous backup and point-in-time restore: storage
// nodes periodically stage their log and new pages to S3 (Figure 4 step 6),
// and the binlog of the mirrored-MySQL baseline is archived there too
// (Figure 2). Objects are immutable and versioned.
package objstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Errors returned by the store.
var (
	ErrNotFound = errors.New("objstore: object not found")
	ErrVersion  = errors.New("objstore: version not found")
)

// Version is one immutable revision of an object.
type Version struct {
	ID      int
	Data    []byte
	Written time.Time
}

// Store is an in-memory versioned object store. All methods are safe for
// concurrent use.
type Store struct {
	mu      sync.RWMutex
	objects map[string][]Version
	puts    uint64
	gets    uint64
	bytes   uint64
	now     func() time.Time
}

// New returns an empty store.
func New() *Store {
	return &Store{objects: make(map[string][]Version), now: time.Now}
}

// SetClock overrides the timestamp source (tests).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// Put writes a new version of key and returns its version id (starting at
// 1 per key). Data is copied.
func (s *Store) Put(key string, data []byte) int {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.objects[key]
	v := Version{ID: len(vs) + 1, Data: cp, Written: s.now()}
	s.objects[key] = append(vs, v)
	s.puts++
	s.bytes += uint64(len(cp))
	return v.ID
}

// Get returns the latest version of key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.objects[key]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	s.gets++
	return append([]byte(nil), vs[len(vs)-1].Data...), nil
}

// GetVersion returns a specific version of key.
func (s *Store) GetVersion(key string, version int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.objects[key]
	if len(vs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if version < 1 || version > len(vs) {
		return nil, fmt.Errorf("%w: %s@%d", ErrVersion, key, version)
	}
	s.gets++
	return append([]byte(nil), vs[version-1].Data...), nil
}

// GetAsOf returns the newest version of key written at or before t —
// the primitive behind point-in-time restore.
func (s *Store) GetAsOf(key string, t time.Time) ([]byte, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.objects[key]
	for i := len(vs) - 1; i >= 0; i-- {
		if !vs[i].Written.After(t) {
			s.gets++
			return append([]byte(nil), vs[i].Data...), vs[i].ID, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: %s as of %v", ErrNotFound, key, t)
}

// List returns all keys with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var keys []string
	for k := range s.objects {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Count returns the number of distinct keys in the store — O(1) under the
// lock, unlike List, which materializes and sorts every key. Stats polls
// use it so a cluster snapshot never allocates a full listing.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Versions returns the number of versions stored for key.
func (s *Store) Versions(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects[key])
}

// Delete removes all versions of key. Idempotent.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	delete(s.objects, key)
	s.mu.Unlock()
}

// Stats returns put/get counts and total bytes ever written.
func (s *Store) Stats() (puts, gets, bytes uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.puts, s.gets, s.bytes
}
