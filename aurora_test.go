package aurora

import (
	"fmt"
	"testing"
	"time"
)

func newCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	opts.DisableBackground = true
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterCRUDAndScan(t *testing.T) {
	c := newCluster(t, Options{})
	for i := 0; i < 20; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := c.Get([]byte("k07"))
	if err != nil || !ok || string(v) != "v7" {
		t.Fatalf("get %q %v %v", v, ok, err)
	}
	if err := c.Delete([]byte("k07")); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := c.Scan([]byte("k00"), []byte("k10"), func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 9 {
		t.Fatalf("scan count %d", count)
	}
	rows, err := c.Rows()
	if err != nil || rows != 19 {
		t.Fatalf("rows %d %v", rows, err)
	}
	s := c.Stats()
	if s.Commits == 0 || s.VDL == 0 || s.NetworkMessages == 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestClusterTransactions(t *testing.T) {
	c := newCluster(t, Options{})
	tx := c.Begin()
	if err := tx.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := c.BeginSnapshot()
	defer snap.Abort()
	if err := c.Put([]byte("a"), []byte("9")); err != nil {
		t.Fatal(err)
	}
	v, _, err := snap.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("snapshot %q %v", v, err)
	}
}

func TestClusterSurvivesAZFailure(t *testing.T) {
	c := newCluster(t, Options{})
	if err := c.Put([]byte("pre"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.FailAZ(1, true)
	defer c.FailAZ(1, false)
	if err := c.Put([]byte("during"), []byte("y")); err != nil {
		t.Fatalf("write during AZ failure: %v", err)
	}
	if v, ok, err := c.Get([]byte("pre")); err != nil || !ok || string(v) != "x" {
		t.Fatalf("read during AZ failure: %q %v %v", v, ok, err)
	}
}

func TestClusterFailover(t *testing.T) {
	c := newCluster(t, Options{})
	for i := 0; i < 25; i++ {
		if err := c.Put([]byte(fmt.Sprintf("f%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashWriter()
	rep, err := c.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.VDL == 0 || rep.Epoch == 0 {
		t.Fatalf("report %+v", rep)
	}
	if v, ok, err := c.Get([]byte("f13")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("read after failover: %q %v %v", v, ok, err)
	}
	if err := c.Put([]byte("post"), []byte("failover")); err != nil {
		t.Fatal(err)
	}
}

func TestClusterReplicas(t *testing.T) {
	c := newCluster(t, Options{})
	r, err := c.AddReplica("one", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put([]byte("rk"), []byte("rv")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		v, ok, err := r.Get([]byte("rk"))
		if err != nil {
			t.Fatal(err)
		}
		if ok && string(v) == "rv" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never saw the write")
		}
		time.Sleep(time.Millisecond)
	}
	if r.Lag(c) != 0 {
		// Lag can legitimately be zero or near-zero here; only fail if huge.
		if r.Lag(c) > 1000 {
			t.Fatalf("lag %d", r.Lag(c))
		}
	}
	r.Close()
}

func TestClusterPatch(t *testing.T) {
	c := newCluster(t, Options{})
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	id := c.Proxy().Connect()
	sessions, pause, err := c.Patch(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sessions != 1 {
		t.Fatalf("sessions %d", sessions)
	}
	if pause > time.Second {
		t.Fatalf("pause %v", pause)
	}
	// Data and the session survive; writes work on the patched engine.
	if v, ok, err := c.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("read after patch: %q %v %v", v, ok, err)
	}
	if c.Proxy().Sessions() != 1 {
		t.Fatal("session lost")
	}
	_ = id
}

func TestReplicaLimit(t *testing.T) {
	c := newCluster(t, Options{PGs: 1})
	for i := 0; i < 15; i++ {
		if _, err := c.AddReplica(fmt.Sprintf("r%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddReplica("overflow", 0); err == nil {
		t.Fatal("16th replica accepted")
	}
}

func TestClusterPITR(t *testing.T) {
	c := newCluster(t, Options{PGs: 2})
	if err := c.Put([]byte("doc"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if n := c.BackupNow(); n != 12 {
		t.Fatalf("backed up %d segments, want 12", n)
	}
	cutoff := time.Now()
	time.Sleep(5 * time.Millisecond)
	if err := c.Put([]byte("doc"), []byte("v2-oops")); err != nil {
		t.Fatal(err)
	}
	c.BackupNow()

	restored, err := c.RestoreAt("restored", cutoff)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	v, ok, err := restored.Get([]byte("doc"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("restored doc = %q %v %v, want v1", v, ok, err)
	}
	// Restored cluster is independent and writable.
	if err := restored.Put([]byte("doc"), []byte("v3")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = c.Get([]byte("doc"))
	if string(v) != "v2-oops" {
		t.Fatalf("source cluster changed: %q", v)
	}
	// Restoring without a store fails cleanly.
	noStore := newCluster(t, Options{DisableBackup: true})
	if _, err := noStore.RestoreAt("x", time.Now()); err == nil {
		t.Fatal("restore without store accepted")
	}
}
