package aurora

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aurora/internal/core"
)

func newCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	opts.DisableBackground = true
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestClusterCRUDAndScan(t *testing.T) {
	c := newCluster(t, Options{})
	for i := 0; i < 20; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := c.Get([]byte("k07"))
	if err != nil || !ok || string(v) != "v7" {
		t.Fatalf("get %q %v %v", v, ok, err)
	}
	if err := c.Delete([]byte("k07")); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := c.Scan([]byte("k00"), []byte("k10"), func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 9 {
		t.Fatalf("scan count %d", count)
	}
	rows, err := c.Rows()
	if err != nil || rows != 19 {
		t.Fatalf("rows %d %v", rows, err)
	}
	s := c.Stats()
	if s.Commits == 0 || s.VDL == 0 || s.NetworkMessages == 0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestClusterTransactions(t *testing.T) {
	c := newCluster(t, Options{})
	tx := c.Begin()
	if err := tx.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := c.BeginSnapshot()
	defer snap.Abort()
	if err := c.Put([]byte("a"), []byte("9")); err != nil {
		t.Fatal(err)
	}
	v, _, err := snap.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("snapshot %q %v", v, err)
	}
}

func TestClusterSurvivesAZFailure(t *testing.T) {
	c := newCluster(t, Options{})
	if err := c.Put([]byte("pre"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	c.FailAZ(1, true)
	defer c.FailAZ(1, false)
	if err := c.Put([]byte("during"), []byte("y")); err != nil {
		t.Fatalf("write during AZ failure: %v", err)
	}
	if v, ok, err := c.Get([]byte("pre")); err != nil || !ok || string(v) != "x" {
		t.Fatalf("read during AZ failure: %q %v %v", v, ok, err)
	}
}

func TestClusterFailover(t *testing.T) {
	c := newCluster(t, Options{})
	for i := 0; i < 25; i++ {
		if err := c.Put([]byte(fmt.Sprintf("f%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.CrashWriter()
	rep, err := c.Failover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.VDL == 0 || rep.Epoch == 0 {
		t.Fatalf("report %+v", rep)
	}
	if v, ok, err := c.Get([]byte("f13")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("read after failover: %q %v %v", v, ok, err)
	}
	if err := c.Put([]byte("post"), []byte("failover")); err != nil {
		t.Fatal(err)
	}
}

func TestClusterReplicas(t *testing.T) {
	c := newCluster(t, Options{})
	r, err := c.AddReplica("one", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put([]byte("rk"), []byte("rv")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		v, ok, err := r.Get([]byte("rk"))
		if err != nil {
			t.Fatal(err)
		}
		if ok && string(v) == "rv" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica never saw the write")
		}
		time.Sleep(time.Millisecond)
	}
	if r.Lag(c) != 0 {
		// Lag can legitimately be zero or near-zero here; only fail if huge.
		if r.Lag(c) > 1000 {
			t.Fatalf("lag %d", r.Lag(c))
		}
	}
	r.Close()
}

func TestClusterPatch(t *testing.T) {
	c := newCluster(t, Options{})
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	id := c.Proxy().Connect()
	sessions, pause, err := c.Patch(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sessions != 1 {
		t.Fatalf("sessions %d", sessions)
	}
	if pause > time.Second {
		t.Fatalf("pause %v", pause)
	}
	// Data and the session survive; writes work on the patched engine.
	if v, ok, err := c.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("read after patch: %q %v %v", v, ok, err)
	}
	if c.Proxy().Sessions() != 1 {
		t.Fatal("session lost")
	}
	_ = id
}

func TestReplicaLimit(t *testing.T) {
	c := newCluster(t, Options{PGs: 1})
	for i := 0; i < 15; i++ {
		if _, err := c.AddReplica(fmt.Sprintf("r%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddReplica("overflow", 0); err == nil {
		t.Fatal("16th replica accepted")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
	bad := []Options{
		{PGs: -1},
		{CachePages: -2},
		{LockTimeout: -time.Second},
		{TraceEvery: -3},
		{Network: NetworkProfile(99)},
	}
	for _, o := range bad {
		err := o.Validate()
		if err == nil {
			t.Fatalf("options %+v accepted", o)
		}
		if !errors.Is(err, ErrInvalidOptions) {
			t.Fatalf("error %v does not match ErrInvalidOptions", err)
		}
		var oe *OptionError
		if !errors.As(err, &oe) || oe.Field == "" {
			t.Fatalf("error %v is not a field-typed OptionError", err)
		}
	}
	// NewCluster rejects invalid options before provisioning anything.
	if _, err := NewCluster(Options{PGs: -1}); !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("NewCluster with bad options: %v", err)
	}
}

// TestGrowVolumeLive grows the volume while a write workload runs: zero
// failed commits, the geometry epoch advances, and the appended PGs serve
// reads after the rebalance.
func TestGrowVolumeLive(t *testing.T) {
	// The tiny cache plus a dataset spanning many pages forces post-grow
	// reads through to the storage fleet so the per-PG read counters
	// observe them.
	c := newCluster(t, Options{PGs: 2, CachePages: 16})
	pad := make([]byte, 256)
	for i := 0; i < 600; i++ {
		if err := c.Put([]byte(fmt.Sprintf("seed%04d", i)), pad); err != nil {
			t.Fatal(err)
		}
	}

	var (
		stop    atomic.Bool
		wErrVal atomic.Value
		wg      sync.WaitGroup
	)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				k := []byte(fmt.Sprintf("live-%d-%04d", w, i))
				if err := c.Put(k, []byte("x")); err != nil {
					wErrVal.CompareAndSwap(nil, fmt.Errorf("writer %d: %w", w, err))
					return
				}
			}
		}(w)
	}

	time.Sleep(3 * time.Millisecond)
	rep, err := c.GrowVolume(2)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if e := wErrVal.Load(); e != nil {
		t.Fatalf("write failed during grow: %v", e)
	}
	if len(rep.AddedPGs) != 2 || rep.ToEpoch <= rep.FromEpoch {
		t.Fatalf("growth report %+v", rep)
	}
	s := c.Stats()
	if s.WriteFailures != 0 {
		t.Fatalf("%d failed commits during grow", s.WriteFailures)
	}
	if s.PGs != 4 || s.GeometryEpoch != rep.ToEpoch {
		t.Fatalf("stats after grow: PGs=%d epoch=%d, report %+v", s.PGs, s.GeometryEpoch, rep)
	}
	if rep.StripesMoved == 0 {
		t.Fatalf("no stripes rebalanced: %+v", rep)
	}
	if s.RebalanceStripesMoved == 0 || s.RebalancePagesCopied == 0 {
		t.Fatalf("rebalance counters empty: %+v", s)
	}

	// All data remains readable and the new PGs serve part of it.
	before := clusterNewPGReads(c)
	for i := 0; i < 600; i++ {
		v, ok, err := c.Get([]byte(fmt.Sprintf("seed%04d", i)))
		if err != nil || !ok || len(v) != len(pad) {
			t.Fatalf("seed%04d after grow: %d bytes, %v %v", i, len(v), ok, err)
		}
	}
	if clusterNewPGReads(c)-before == 0 {
		t.Fatal("appended PGs served no reads after rebalance")
	}
}

// clusterNewPGReads sums the segment read counters on PGs 2+.
func clusterNewPGReads(c *Cluster) uint64 {
	var total uint64
	for pg := 2; pg < c.fleet.PGs(); pg++ {
		for _, n := range c.fleet.Replicas(core.PGID(pg)) {
			total += n.Reads()
		}
	}
	return total
}

func TestClusterLogSplit(t *testing.T) {
	c := newCluster(t, Options{PGs: 2, LogSplit: true, CachePages: 8})
	for i := 0; i < 30; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot reads bypass the writer's cache and hit the storage fleet,
	// so they exercise the page tier's read-time catch-up end to end.
	verify := func(ctx string) {
		tx := c.BeginSnapshot()
		defer tx.Abort()
		for i := 1; i < 30; i++ {
			v, ok, err := tx.Get([]byte(fmt.Sprintf("k%02d", i)))
			if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("%s: k%02d = %q %v %v", ctx, i, v, ok, err)
			}
		}
	}
	verify("initial")

	// Every page replica of both PGs down: commits must still resolve on
	// the log tier alone.
	for pg := 0; pg < 2; pg++ {
		for r := 3; r < 6; r++ {
			c.CrashStorageNode(pg, r, true)
		}
	}
	if err := c.Put([]byte("k00"), []byte("v0-bis")); err != nil {
		t.Fatalf("commit with page tier down: %v", err)
	}
	for pg := 0; pg < 2; pg++ {
		for r := 3; r < 6; r++ {
			c.CrashStorageNode(pg, r, false)
		}
	}
	if v, ok, err := c.Get([]byte("k00")); err != nil || !ok || string(v) != "v0-bis" {
		t.Fatalf("k00 = %q %v %v", v, ok, err)
	}
	verify("after page-tier outage")

	s := c.Stats()
	if s.LogBytes == 0 {
		t.Fatalf("stats: LogBytes = 0 with commits shipped: %+v", s)
	}
	if s.PageFeedBytes == 0 {
		t.Fatalf("stats: PageFeedBytes = 0 after snapshot reads forced catch-up: %+v", s)
	}
}

func TestClusterPITR(t *testing.T) {
	c := newCluster(t, Options{PGs: 2})
	if err := c.Put([]byte("doc"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if n := c.BackupNow(); n != 12 {
		t.Fatalf("backed up %d segments, want 12", n)
	}
	cutoff := time.Now()
	time.Sleep(5 * time.Millisecond)
	if err := c.Put([]byte("doc"), []byte("v2-oops")); err != nil {
		t.Fatal(err)
	}
	c.BackupNow()

	restored, err := c.RestoreAt("restored", cutoff)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	v, ok, err := restored.Get([]byte("doc"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("restored doc = %q %v %v, want v1", v, ok, err)
	}
	// Restored cluster is independent and writable.
	if err := restored.Put([]byte("doc"), []byte("v3")); err != nil {
		t.Fatal(err)
	}
	v, _, _ = c.Get([]byte("doc"))
	if string(v) != "v2-oops" {
		t.Fatalf("source cluster changed: %q", v)
	}
	// Restoring without a store fails cleanly.
	noStore := newCluster(t, Options{DisableBackup: true})
	if _, err := noStore.RestoreAt("x", time.Now()); err == nil {
		t.Fatal("restore without store accepted")
	}
}

func TestClusterAutoTune(t *testing.T) {
	// Knobs surface with static defaults even with AutoTune off.
	c := newCluster(t, Options{})
	if s := c.Stats(); len(s.Knobs) != 4 || s.AutoTuneSteps != 0 {
		t.Fatalf("static stats: %d knobs, %d steps", len(s.Knobs), s.AutoTuneSteps)
	}

	// With AutoTune on the controller steps, counters surface, and the
	// knobs keep steering across a failover (the option rides Cluster.opts).
	ac := newCluster(t, Options{AutoTune: true})
	for i := 0; i < 50; i++ {
		if err := ac.Put([]byte(fmt.Sprintf("at%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for ac.Stats().AutoTuneSteps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("controller never stepped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	names := map[string]bool{}
	for _, k := range ac.Stats().Knobs {
		names[k.Name] = true
		if k.Min > k.Value || k.Value > k.Max {
			t.Fatalf("knob %s value %d outside [%d,%d]", k.Name, k.Value, k.Min, k.Max)
		}
	}
	for _, want := range []string{"engine.commit_group", "engine.inflight_groups",
		"volume.hedge_mult_pct", "volume.backoff_cap_us"} {
		if !names[want] {
			t.Fatalf("knob %s missing from Stats: %v", want, names)
		}
	}
	ac.CrashWriter()
	if _, err := ac.Failover(); err != nil {
		t.Fatal(err)
	}
	if err := ac.Put([]byte("post-failover"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(2 * time.Second)
	for ac.Stats().AutoTuneSteps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("controller absent after failover")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
