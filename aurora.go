// Package aurora is a from-scratch reproduction of Amazon Aurora (SIGMOD
// 2017): a relational OLTP engine whose redo processing is pushed into a
// multi-tenant, quorum-replicated, self-healing storage service. The log is
// the database: the writer ships only redo records — never pages — to six
// segment replicas across three simulated availability zones, commits
// asynchronously once the volume durable LSN passes the commit record, and
// recovers from crashes in milliseconds because redo application runs
// continuously on the storage fleet.
//
// A Cluster bundles the simulated multi-AZ network, the storage fleet, the
// single writer instance and any read replicas:
//
//	c, err := aurora.NewCluster(aurora.Options{})
//	defer c.Close()
//	err = c.Put([]byte("k"), []byte("v"))
//	tx := c.Begin()
//	...
//
// The internal packages implement every substrate the paper depends on —
// the network and SSD simulators, an EBS-style mirrored block store and a
// MySQL-style baseline engine for the paper's comparisons, an S3-style
// object store for continuous backup, quorum machinery with a Monte-Carlo
// durability model, and the storage-node pipeline of Figure 4.
package aurora

import (
	"context"
	"errors"
	"fmt"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
	"aurora/internal/quorum"
	"aurora/internal/replica"
	"aurora/internal/trace"
	"aurora/internal/volume"
	"aurora/internal/zdp"
)

// NetworkProfile selects the latency model of the simulated network.
type NetworkProfile int

const (
	// NetFast is a zero-latency network for tests and functional use.
	NetFast NetworkProfile = iota
	// NetDatacenter is the scaled-down three-AZ model used by benchmarks:
	// 100µs intra-AZ, 500µs cross-AZ, jitter and rare 10x outliers.
	NetDatacenter
)

// Options configures a cluster. The zero value is a working configuration:
// aurora.NewCluster(aurora.Options{}) provisions a 4-PG volume on a fast
// local network with backups and background loops on.
type Options struct {
	// --- Topology: network, storage fleet, volume geometry ---

	// Name prefixes node identities, letting several clusters share a
	// network (multi-tenancy).
	Name string
	// PGs is the number of protection groups the volume's initial geometry
	// is striped over (default 4). Each PG is six segment replicas, two per
	// AZ. The volume can grow beyond this at runtime with GrowVolume; PGs
	// only fixes the starting point.
	PGs int
	// Network selects the latency model.
	Network NetworkProfile
	// RealisticDisks enables NVMe-like latencies on storage node SSDs.
	RealisticDisks bool
	// LogSplit re-roles each protection group into a 3-replica synchronous
	// log tier and a 3-replica asynchronous page tier (quorum.TaurusMix()).
	// Commits wait only on a 2/3 log-tier quorum; page replicas pull the
	// redo stream in the background and serve all page reads. Off by
	// default: the zero value keeps the paper's 4/6 scheme.
	LogSplit bool
	// DisableBackup turns off continuous backup to the object store.
	DisableBackup bool
	// DisableBackground skips launching the storage nodes' gossip/coalesce/
	// backup/scrub loops (on by default in NewCluster; benchmarks may
	// disable for determinism and drive them manually).
	DisableBackground bool

	// --- Engine: the writer instance ---

	// CachePages sets the writer's buffer cache size in pages (default
	// 4096); the knob behind the paper's instance-size sweeps.
	CachePages int
	// LockTimeout bounds row-lock waits (deadlock resolution).
	LockTimeout time.Duration
	// AutoTune runs the adaptive control plane: a feedback controller that
	// steers the latency knobs (commit-group size, inflight-group budget,
	// hedged-read deadline multiplier, sender backoff ceiling) from
	// windowed per-stage latency measurements instead of leaving them at
	// their static defaults. Knob values and controller activity surface
	// in Stats. Enabling AutoTune forces trace sampling on (the write-path
	// signal rides the stage histograms).
	AutoTune bool

	// --- Tracing & observability ---

	// TraceEvery samples 1 in N commits (and cache-miss page reads) into
	// the causal tracing subsystem; 0 disables sampling (the default),
	// leaving only an atomic load on the hot path. The collector is
	// reachable via Tracer for attribution tables and exemplar trees.
	TraceEvery int
}

// OptionError reports an invalid Options field.
type OptionError struct {
	Field  string
	Reason string
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("aurora: invalid option %s: %s", e.Field, e.Reason)
}

// ErrInvalidOptions is the sentinel all OptionError values match with
// errors.Is, so callers can test for configuration errors as a class.
var ErrInvalidOptions = errors.New("aurora: invalid options")

// Is makes every OptionError match ErrInvalidOptions.
func (e *OptionError) Is(target error) bool { return target == ErrInvalidOptions }

// Validate checks the options without provisioning anything. The zero
// value is valid; fields where zero means "use the default" only fail on
// negative or out-of-range values. NewCluster calls this itself — Validate
// exists so configuration loaders can reject bad input early.
func (o Options) Validate() error {
	if o.PGs < 0 {
		return &OptionError{Field: "PGs", Reason: "must be >= 0 (0 selects the default)"}
	}
	if o.CachePages < 0 {
		return &OptionError{Field: "CachePages", Reason: "must be >= 0 (0 selects the default)"}
	}
	if o.LockTimeout < 0 {
		return &OptionError{Field: "LockTimeout", Reason: "must be >= 0"}
	}
	if o.TraceEvery < 0 {
		return &OptionError{Field: "TraceEvery", Reason: "must be >= 0 (0 disables sampling)"}
	}
	if o.Network != NetFast && o.Network != NetDatacenter {
		return &OptionError{Field: "Network", Reason: "unknown network profile"}
	}
	return nil
}

// Cluster is one Aurora deployment: network, storage fleet, object store,
// writer instance, replicas.
type Cluster struct {
	opts      Options
	net       *netsim.Network
	fleet     *volume.Fleet
	store     *objstore.Store
	db        *engine.DB
	proxy     *zdp.Proxy
	replicas  []*Replica
	writerGen int
	closed    bool
}

// NewCluster provisions a fresh cluster: 3 AZs, PGs×6 storage nodes, an
// object store, and a formatted database with its writer in AZ 0.
func NewCluster(opts Options) (*Cluster, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.PGs == 0 {
		opts.PGs = 4
	}
	if opts.Name == "" {
		opts.Name = "aurora"
	}
	var netCfg netsim.Config
	switch opts.Network {
	case NetDatacenter:
		netCfg = netsim.Datacenter()
	default:
		netCfg = netsim.FastLocal()
	}
	net := netsim.New(netCfg)
	store := objstore.New()
	if opts.DisableBackup {
		store = nil
	}
	dcfg := disk.FastLocal()
	if opts.RealisticDisks {
		dcfg = disk.NVMe()
	}
	var q quorum.Config
	if opts.LogSplit {
		q = quorum.TaurusMix()
	}
	fleet, err := volume.NewFleet(volume.FleetConfig{
		Name: opts.Name, Geometry: core.UniformGeometry(opts.PGs),
		Net: net, Disk: dcfg, Store: store, Quorum: q,
	})
	if err != nil {
		return nil, err
	}
	vol := volume.Bootstrap(fleet, volume.ClientConfig{
		WriterNode: netsim.NodeID(opts.Name + "-writer"), WriterAZ: 0,
	})
	db, err := engine.Create(vol, engine.Config{
		CachePages: opts.CachePages, LockTimeout: opts.LockTimeout,
		TraceEvery: opts.TraceEvery, AutoTune: opts.AutoTune,
	})
	if err != nil {
		vol.Close()
		return nil, err
	}
	if !opts.DisableBackground {
		fleet.Start()
	}
	return &Cluster{
		opts:  opts,
		net:   net,
		fleet: fleet,
		store: store,
		db:    db,
		proxy: zdp.NewProxy(db),
	}, nil
}

// Close shuts the cluster down: replicas, writer, storage fleet.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, r := range c.replicas {
		r.inner.Close()
	}
	c.db.Close()
	c.fleet.Stop()
}

// VolumeID identifies the cluster's storage volume on a shared fleet
// (0 for a dedicated cluster from NewCluster).
func (c *Cluster) VolumeID() uint32 { return uint32(c.fleet.Vol()) }

// Begin starts a read-committed writer transaction.
func (c *Cluster) Begin() *Tx { return &Tx{inner: c.db.Begin()} }

// BeginCtx starts a writer transaction whose reads are bounded by ctx;
// pair with Tx.CommitCtx for an end-to-end deadline.
func (c *Cluster) BeginCtx(ctx context.Context) *Tx { return &Tx{inner: c.db.BeginCtx(ctx)} }

// BeginSnapshot starts a read-only transaction at a frozen view (the
// current volume durable LSN).
func (c *Cluster) BeginSnapshot() *Tx { return &Tx{inner: c.db.BeginSnapshot()} }

// BeginSnapshotCtx is BeginSnapshot with reads bounded by ctx.
func (c *Cluster) BeginSnapshotCtx(ctx context.Context) *Tx {
	return &Tx{inner: c.db.BeginSnapshotCtx(ctx)}
}

// ErrDeadlineExceeded is returned by ctx-bounded operations whose deadline
// fired first. For CommitCtx specifically, the commit is not withdrawn:
// it may still become durable after the caller has given up — the caller
// must treat the outcome as unknown (see DESIGN.md, "Deadlines &
// cancellation").
var ErrDeadlineExceeded = engine.ErrDeadlineExceeded

// Put writes one row in its own transaction, returning once durable.
func (c *Cluster) Put(key, val []byte) error { return c.db.Put(key, val) }

// Get reads one row (read committed).
func (c *Cluster) Get(key []byte) ([]byte, bool, error) { return c.db.Get(key) }

// GetCtx reads one row (read committed) with the read bounded by ctx.
func (c *Cluster) GetCtx(ctx context.Context, key []byte) ([]byte, bool, error) {
	return c.db.GetCtx(ctx, key)
}

// Delete removes one row in its own transaction.
func (c *Cluster) Delete(key []byte) error { return c.db.Delete(key) }

// Scan visits rows with from <= key < to in key order in an autocommit
// read transaction; to == nil is unbounded.
func (c *Cluster) Scan(from, to []byte, fn func(key, val []byte) bool) error {
	tx := c.Begin()
	defer tx.Abort()
	return tx.Scan(from, to, fn)
}

// Rows returns the approximate number of live rows.
func (c *Cluster) Rows() (uint64, error) { return c.db.Rows() }

// AddReplica attaches a read replica in the given AZ (up to 15, §4.2.4).
func (c *Cluster) AddReplica(name string, az int) (*Replica, error) {
	if len(c.replicas) >= 15 {
		return nil, errors.New("aurora: replica limit (15) reached")
	}
	r := replica.Attach(c.db, c.fleet, replica.Config{
		Name:       netsim.NodeID(fmt.Sprintf("%s-replica-%s", c.opts.Name, name)),
		AZ:         netsim.AZ(az % 3),
		CachePages: c.opts.CachePages,
		Tracer:     c.db.Tracer(),
	})
	rep := &Replica{inner: r}
	c.replicas = append(c.replicas, rep)
	return rep, nil
}

// CrashWriter kills the writer instance abruptly. The storage fleet keeps
// all durable state; call Failover to bring up a new writer.
func (c *Cluster) CrashWriter() { c.db.Crash() }

// Failover recovers the volume and attaches a fresh writer instance,
// returning the recovery report. Replicas must be re-attached by the
// caller (their stream died with the writer).
func (c *Cluster) Failover() (*RecoveryReport, error) {
	c.writerGen++
	db, rep, err := engine.Recover(context.Background(), c.fleet, volume.ClientConfig{
		WriterNode: netsim.NodeID(fmt.Sprintf("%s-writer-g%d", c.opts.Name, c.writerGen)),
		WriterAZ:   netsim.AZ(c.writerGen % 3),
	}, engine.Config{
		CachePages: c.opts.CachePages, LockTimeout: c.opts.LockTimeout,
		TraceEvery: c.opts.TraceEvery, AutoTune: c.opts.AutoTune,
	})
	if err != nil {
		return nil, err
	}
	c.db = db
	c.proxy = zdp.NewProxy(db)
	c.replicas = nil
	return &RecoveryReport{
		VCL: uint64(rep.VCL), VDL: uint64(rep.VDL), Epoch: rep.Epoch,
		Duration: rep.Duration, NodesContacted: rep.Contacted,
	}, nil
}

// RecoveryReport summarises a volume recovery (§4.3): no redo is replayed
// at the database; the volume's durable points are re-established and the
// uncommitted tail truncated.
type RecoveryReport struct {
	VCL            uint64
	VDL            uint64
	Epoch          uint64
	Duration       time.Duration
	NodesContacted int
}

// BackupNow stages a backup of every segment to the object store (the
// continuous background backup runs anyway when background loops are on;
// this forces a consistent-enough point for RestoreAt). It returns how
// many segments were backed up.
func (c *Cluster) BackupNow() int {
	if c.store == nil {
		return 0
	}
	n := 0
	for g := 0; g < c.fleet.PGs(); g++ {
		for r := 0; r < c.fleet.Quorum().V; r++ {
			if v := c.fleet.Node(core.PGID(g), r).BackupNow(); v > 0 {
				n++
			}
		}
	}
	return n
}

// RestoreAt performs a point-in-time restore: it provisions a brand-new
// cluster (own network, own storage fleet) from the newest backups at or
// before asOf, runs volume recovery to a consistent durable point, and
// returns it. The source cluster is untouched.
func (c *Cluster) RestoreAt(name string, asOf time.Time) (*Cluster, error) {
	if c.store == nil {
		return nil, errors.New("aurora: cluster has no backup store")
	}
	var netCfg netsim.Config
	switch c.opts.Network {
	case NetDatacenter:
		netCfg = netsim.Datacenter()
	default:
		netCfg = netsim.FastLocal()
	}
	net := netsim.New(netCfg)
	dcfg := disk.FastLocal()
	if c.opts.RealisticDisks {
		dcfg = disk.NVMe()
	}
	var q quorum.Config
	if c.opts.LogSplit {
		q = quorum.TaurusMix()
	}
	fleet, _, err := volume.RestoreFleet(volume.FleetConfig{
		Name: c.opts.Name, Vol: c.fleet.Vol(),
		Geometry: core.UniformGeometry(c.opts.PGs),
		Net:      net, Disk: dcfg, Store: c.store, Quorum: q,
	}, asOf)
	if err != nil {
		return nil, err
	}
	db, _, err := engine.Recover(context.Background(), fleet, volume.ClientConfig{
		WriterNode: netsim.NodeID(name + "-writer"), WriterAZ: 0,
	}, engine.Config{
		CachePages: c.opts.CachePages, LockTimeout: c.opts.LockTimeout,
		TraceEvery: c.opts.TraceEvery, AutoTune: c.opts.AutoTune,
	})
	if err != nil {
		return nil, err
	}
	opts := c.opts
	opts.Name = name
	if !opts.DisableBackground {
		fleet.Start()
	}
	return &Cluster{
		opts: opts, net: net, fleet: fleet, store: c.store, db: db,
		proxy: zdp.NewProxy(db),
	}, nil
}

// GrowthReport summarises one GrowVolume call.
type GrowthReport struct {
	AddedPGs     []int // protection-group IDs appended to the volume
	FromEpoch    uint64
	ToEpoch      uint64
	StripesMoved int
	PagesCopied  uint64
	Duration     time.Duration
}

// GrowVolume appends n protection groups to the storage volume and
// rebalances page stripes onto them while the workload continues (§3:
// Aurora volumes grow by appending protection groups on demand). Writes
// framed during a stripe's brief cutover window queue behind the geometry
// fence — they never fail — and reads keep flowing throughout, routed by
// read point. A second call while one is rebalancing returns an error.
func (c *Cluster) GrowVolume(n int) (*GrowthReport, error) {
	rep, err := c.db.Volume().Grow(n)
	if err != nil {
		return nil, err
	}
	added := make([]int, len(rep.AddedPGs))
	for i, pg := range rep.AddedPGs {
		added[i] = int(pg)
	}
	return &GrowthReport{
		AddedPGs:     added,
		FromEpoch:    rep.FromEpoch,
		ToEpoch:      rep.ToEpoch,
		StripesMoved: rep.StripesMoved,
		PagesCopied:  rep.PagesCopied,
		Duration:     rep.Duration,
	}, nil
}

// FailAZ fails (or restores) an entire availability zone. With the 4/6
// quorum, writes and reads continue through a single AZ failure.
func (c *Cluster) FailAZ(az int, down bool) { c.net.SetAZDown(netsim.AZ(az%3), down) }

// CrashStorageNode crashes (or restarts) one segment replica.
func (c *Cluster) CrashStorageNode(pg, replicaIdx int, down bool) {
	n := c.fleet.Node(core.PGID(pg), replicaIdx%c.fleet.Quorum().V)
	if down {
		n.Crash()
	} else {
		n.Restart()
		n.GossipOnce()
	}
}

// RepairStorageNode re-replicates a segment from its peers after a wipe.
func (c *Cluster) RepairStorageNode(pg, replicaIdx int) error {
	return c.fleet.RepairSegment(core.PGID(pg), replicaIdx%c.fleet.Quorum().V)
}

// Patch performs a zero-downtime patch (§7.4): it waits for a quiet
// instant, spools session state, swaps in a freshly recovered engine and
// resumes. Connections held through the cluster's proxy survive.
func (c *Cluster) Patch(timeout time.Duration) (sessions int, pause time.Duration, err error) {
	rep, err := c.proxy.Patch(func(old *engine.DB) (*engine.DB, error) {
		old.Crash()
		c.writerGen++
		db, _, err := engine.Recover(context.Background(), c.fleet, volume.ClientConfig{
			WriterNode: netsim.NodeID(fmt.Sprintf("%s-writer-g%d", c.opts.Name, c.writerGen)),
			WriterAZ:   0,
		}, engine.Config{
			CachePages: c.opts.CachePages, LockTimeout: c.opts.LockTimeout,
			TraceEvery: c.opts.TraceEvery, AutoTune: c.opts.AutoTune,
		})
		if err == nil {
			c.db = db
			c.replicas = nil
		}
		return db, err
	}, timeout)
	if err != nil {
		return 0, 0, err
	}
	return rep.Sessions, rep.PauseLatency, nil
}

// Proxy exposes the session proxy for connection-oriented use (ZDP demos).
func (c *Cluster) Proxy() *zdp.Proxy { return c.proxy }

// Tracer returns the writer's causal-tracing collector: per-stage latency
// attribution and slowest-exemplar commit/read traces. Sampling is toggled
// with Tracer().SetSampleEvery (or Options.TraceEvery at creation).
func (c *Cluster) Tracer() *trace.Collector { return c.db.Tracer() }

// Stats is a cluster-wide snapshot.
type Stats struct {
	Commits         uint64
	Aborts          uint64
	VDL             uint64
	CacheHits       uint64
	CacheMisses     uint64
	NetworkMessages uint64
	NetworkBytes    uint64
	ReplicaCount    int
	BackupObjects   int

	// Commit-pipeline gauges: framing critical sections, group sizes, and
	// the commit latency distribution (lock-free histograms on the hot path).
	FramingOps    uint64
	MeanGroupSize float64
	MaxGroupSize  uint64
	CommitP50     time.Duration
	CommitP95     time.Duration
	CommitP99     time.Duration

	// Gray-failure tolerance counters (the §4.2.3/§3.3 machinery): read/
	// write retries, hedged reads, responses lost after a successful
	// segment read, and fleet self-repairs.
	ReadRetries   uint64
	WriteRetries  uint64
	WriteFailures uint64
	Hedges        uint64
	HedgeWins     uint64
	HedgeCancels  uint64 // losing hedge attempts actively canceled by a winner
	AutoRepairs   uint64
	RespDrops     uint64

	// Abandons counts network waits given up because a deadline fired
	// (netsim-level: the message may still be delivered).
	Abandons uint64

	// Role-split byte accounting (Options.LogSplit). LogBytes is redo
	// shipped synchronously on the commit path; PageFeedBytes is redo the
	// page tier pulled asynchronously. With the split on, LogBytes per
	// commit shrinks (3 copies instead of 6) while PageFeedBytes absorbs
	// the deferred fan-out.
	LogBytes      uint64
	PageFeedBytes uint64

	// Volume geometry & growth (§3): the routing-table epoch, the current
	// PG count, and the rebalancer's progress counters.
	GeometryEpoch         uint64
	PGs                   int
	RebalanceStripesMoved uint64
	RebalancePagesCopied  uint64
	GeometryReadRetries   uint64

	// TracesSampled counts finished causal traces (0 with sampling off).
	TracesSampled uint64

	// Adaptive control plane (Options.AutoTune). Knobs always lists the
	// registered latency knobs with their current values — static defaults
	// when AutoTune is off, the controller's steered values when on — so
	// experiments and chaos runs can watch trajectories. The counters
	// record controller windows stepped and knob movements made.
	Knobs           []KnobState
	AutoTuneSteps   uint64
	AutoTuneAdjusts uint64
}

// KnobState is a public snapshot of one control-plane knob: its canonical
// name (e.g. "engine.commit_group"), current and default values, allowed
// range, and how many times the controller (or any caller) has moved it.
type KnobState struct {
	Name    string
	Value   int64
	Default int64
	Min     int64
	Max     int64
	Adjusts uint64
}

// Stats returns a cluster-wide snapshot.
func (c *Cluster) Stats() Stats {
	es := c.db.Stats()
	ns := c.net.Stats()
	s := Stats{
		Commits: es.Commits, Aborts: es.Aborts, VDL: uint64(es.Volume.VDL),
		CacheHits: es.Cache.Hits, CacheMisses: es.Cache.Misses,
		NetworkMessages: ns.Messages, NetworkBytes: ns.Bytes,
		ReplicaCount:  len(c.replicas),
		FramingOps:    es.Pipeline.Frames,
		MeanGroupSize: es.Pipeline.MeanGroupSize,
		MaxGroupSize:  es.Pipeline.MaxGroupSize,
		CommitP50:     es.Pipeline.CommitP50,
		CommitP95:     es.Pipeline.CommitP95,
		CommitP99:     es.Pipeline.CommitP99,
		ReadRetries:   es.Volume.ReadRetries,
		WriteRetries:  es.Volume.WriteRetries,
		WriteFailures: es.Volume.WriteFailures,
		Hedges:        es.Volume.Hedges,
		HedgeWins:     es.Volume.HedgeWins,
		HedgeCancels:  es.Volume.HedgeCancels,
		AutoRepairs:   es.Volume.AutoRepairs,
		Abandons:      ns.Abandons,
		LogBytes:      es.Volume.LogBytes,
		PageFeedBytes: es.Volume.PageFeedBytes,
		RespDrops:     es.Volume.RespDrops,
		TracesSampled: es.Trace.Finished,

		GeometryEpoch:         es.Volume.GeometryEpoch,
		PGs:                   es.Volume.PGs,
		RebalanceStripesMoved: es.Volume.RebalanceStripesMoved,
		RebalancePagesCopied:  es.Volume.RebalancePagesCopied,
		GeometryReadRetries:   es.Volume.GeomRetries,
	}
	for _, k := range es.Knobs {
		s.Knobs = append(s.Knobs, KnobState{
			Name: k.Name, Value: k.Value, Default: k.Default,
			Min: k.Min, Max: k.Max, Adjusts: k.Adjusts,
		})
	}
	s.AutoTuneSteps = es.AutoTuneSteps
	s.AutoTuneAdjusts = es.AutoTuneAdjusts
	if c.store != nil {
		s.BackupObjects = c.store.Count()
	}
	return s
}

// Tx is a transaction on the writer instance.
type Tx struct{ inner *engine.Tx }

// Get returns the value for key as seen by this transaction.
func (t *Tx) Get(key []byte) ([]byte, bool, error) { return t.inner.Get(key) }

// Put inserts or updates a row under its exclusive row lock.
func (t *Tx) Put(key, val []byte) error { return t.inner.Put(key, val) }

// Delete removes a row under its exclusive row lock.
func (t *Tx) Delete(key []byte) error { return t.inner.Delete(key) }

// Scan visits rows in range, overlaying this transaction's writes.
func (t *Tx) Scan(from, to []byte, fn func(k, v []byte) bool) error {
	return t.inner.Scan(from, to, fn)
}

// Commit makes the transaction durable: it returns once the volume durable
// LSN has passed the commit record (asynchronous commit, §4.2.2).
func (t *Tx) Commit() error { return t.inner.Commit() }

// CommitCtx is Commit with the acknowledgement wait bounded by ctx. When
// the deadline fires after the write set is applied, the commit still
// frames, ships and becomes durable; only this waiter detaches with an
// error wrapping ErrDeadlineExceeded.
func (t *Tx) CommitCtx(ctx context.Context) error { return t.inner.CommitCtx(ctx) }

// Abort discards the transaction; nothing ever reached the log.
func (t *Tx) Abort() { t.inner.Abort() }

// Replica is a read-only instance consuming the writer's redo stream.
type Replica struct{ inner *replica.Replica }

// Get reads a row at the replica's current durable view.
func (r *Replica) Get(key []byte) ([]byte, bool, error) { return r.inner.Get(key) }

// GetCtx is Get with cold-page fetches bounded by ctx.
func (r *Replica) GetCtx(ctx context.Context, key []byte) ([]byte, bool, error) {
	return r.inner.GetCtx(ctx, key)
}

// Scan visits rows in range at the replica's current view.
func (r *Replica) Scan(from, to []byte, fn func(k, v []byte) bool) error {
	return r.inner.Scan(from, to, fn)
}

// WarmUp pre-loads pages so subsequent redo is applied in place.
func (r *Replica) WarmUp(from, to []byte) error { return r.inner.WarmUp(from, to) }

// Lag returns how many LSNs the replica trails the writer by.
func (r *Replica) Lag(c *Cluster) uint64 {
	w := uint64(c.db.VDL())
	rv := uint64(r.inner.VDL())
	if rv >= w {
		return 0
	}
	return w - rv
}

// Close detaches the replica.
func (r *Replica) Close() { r.inner.Close() }
