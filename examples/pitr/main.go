// Point-in-time restore: continuous backup to the object store lets an
// operator roll a fat-fingered deletion back by cloning the volume as of a
// timestamp — without touching the production cluster (§1, §5).
package main

import (
	"fmt"
	"log"
	"time"

	"aurora"
)

func main() {
	c, err := aurora.NewCluster(aurora.Options{Name: "prod", PGs: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Day 1: healthy data, continuously backed up.
	for i := 0; i < 30; i++ {
		if err := c.Put([]byte(fmt.Sprintf("order:%03d", i)), []byte("paid")); err != nil {
			log.Fatal(err)
		}
	}
	c.BackupNow()
	cutoff := time.Now()
	fmt.Printf("30 orders written and backed up; cutoff = %v\n", cutoff.Format(time.RFC3339Nano))
	time.Sleep(5 * time.Millisecond)

	// Day 2: a buggy migration destroys half the orders.
	for i := 0; i < 30; i += 2 {
		if err := c.Delete([]byte(fmt.Sprintf("order:%03d", i))); err != nil {
			log.Fatal(err)
		}
	}
	c.BackupNow()
	remaining := 0
	if err := c.Scan([]byte("order:"), []byte("order;"), func(k, v []byte) bool {
		remaining++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after the bad migration: %d orders remain on prod\n", remaining)

	// Restore a new cluster as of the cutoff.
	restored, err := c.RestoreAt("restored", cutoff)
	if err != nil {
		log.Fatal(err)
	}
	defer restored.Close()
	count := 0
	if err := restored.Scan([]byte("order:"), []byte("order;"), func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored cluster as of cutoff: %d orders (prod untouched: %d)\n", count, remaining)
	if count != 30 {
		log.Fatalf("restore incomplete: %d", count)
	}

	// The restored clone is fully writable.
	if err := restored.Put([]byte("order:999"), []byte("new-on-clone")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("restored clone accepts new writes; PITR complete")
}
