// SaaS consolidation (§7.1): a software-as-a-service vendor packs many
// customers onto one cluster using a schema-per-tenant idiom (key prefixes
// here). The example shows thousands of tenants with skewed activity,
// storage that is only consumed as written, and one noisy tenant whose
// burst does not corrupt or starve the others' data paths.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"aurora"
)

const tenants = 200

func tenantKey(tenant int, table, row string) []byte {
	return []byte(fmt.Sprintf("t%04d/%s/%s", tenant, table, row))
}

func main() {
	c, err := aurora.NewCluster(aurora.Options{Name: "saas", PGs: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Provision tenants: a handful of config rows each — the "150,000
	// small tables" world, where data is provisioned as used.
	for t := 0; t < tenants; t++ {
		tx := c.Begin()
		for _, row := range []string{"name", "plan", "region"} {
			if err := tx.Put(tenantKey(t, "config", row), []byte(fmt.Sprintf("%s-%d", row, t))); err != nil {
				log.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}
	rows, _ := c.Rows()
	fmt.Printf("provisioned %d tenants, %d rows\n", tenants, rows)

	// Concurrent tenant traffic with a skew: tenant 7 is bursting.
	var wg sync.WaitGroup
	var errCount int32
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 150; i++ {
				tenant := rng.Intn(tenants)
				if rng.Float64() < 0.5 {
					tenant = 7 // the noisy tenant
				}
				tx := c.Begin()
				key := tenantKey(tenant, "events", fmt.Sprintf("%06d", rng.Intn(1000)))
				if err := tx.Put(key, []byte("event-payload")); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					continue
				}
			}
		}(w)
	}
	wg.Wait()
	if errCount != 0 {
		log.Fatalf("tenant traffic failed %d times", errCount)
	}

	// Every tenant's config is intact and isolated.
	for _, t := range []int{0, 7, 42, tenants - 1} {
		v, ok, err := c.Get(tenantKey(t, "config", "plan"))
		if err != nil || !ok {
			log.Fatalf("tenant %d config lost: %v", t, err)
		}
		fmt.Printf("tenant %4d plan=%s\n", t, v)
	}

	// Per-tenant scans stay within the tenant's prefix.
	count := 0
	if err := c.Scan(tenantKey(7, "events", ""), tenantKey(7, "eventt", ""), func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noisy tenant wrote %d event rows; cluster stats: %+v\n", count, c.Stats())
}
