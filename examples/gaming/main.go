// Traffic spike with read replicas (§6.2, §7.2): an internet application
// runs steady-state load, then a televised event multiplies its traffic.
// The cluster absorbs the spike with many concurrent connections, and read
// replicas serve the read surge at millisecond staleness, adding no write
// or storage cost.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"aurora"
)

func main() {
	c, err := aurora.NewCluster(aurora.Options{Name: "gaming", PGs: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Seed the player table.
	const players = 2000
	for p := 0; p < players; p += 100 {
		tx := c.Begin()
		for i := p; i < p+100; i++ {
			if err := tx.Put(key(i), []byte("score=0")); err != nil {
				log.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}

	// Two read replicas offload the leaderboard reads.
	r1, err := c.AddReplica("leaderboard-1", 1)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := c.AddReplica("leaderboard-2", 2)
	if err != nil {
		log.Fatal(err)
	}
	if err := r1.WarmUp(nil, nil); err != nil {
		log.Fatal(err)
	}
	if err := r2.WarmUp(nil, nil); err != nil {
		log.Fatal(err)
	}

	run := func(conns int, dur time.Duration) (writes, reads uint64) {
		var w, r atomic.Uint64
		var wg sync.WaitGroup
		deadline := time.Now().Add(dur)
		for i := 0; i < conns; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(i)))
				reps := []*aurora.Replica{r1, r2}
				for time.Now().Before(deadline) {
					p := rng.Intn(players)
					if rng.Float64() < 0.3 { // 30% score updates on the writer
						if c.Put(key(p), []byte(fmt.Sprintf("score=%d", rng.Intn(1_000_000)))) == nil {
							w.Add(1)
						}
					} else { // 70% leaderboard reads on replicas
						if _, _, err := reps[p%2].Get(key(p)); err == nil {
							r.Add(1)
						}
					}
				}
			}(i)
		}
		wg.Wait()
		return w.Load(), r.Load()
	}

	steadyW, steadyR := run(8, 300*time.Millisecond)
	fmt.Printf("steady state: %d writes, %d replica reads\n", steadyW, steadyR)

	// The spike: 10x the connections, instantly.
	spikeW, spikeR := run(80, 300*time.Millisecond)
	fmt.Printf("spike (10x connections): %d writes, %d replica reads\n", spikeW, spikeR)
	if spikeW+spikeR < steadyW+steadyR {
		log.Fatal("spike throughput regressed below steady state")
	}

	// Replica staleness after the spike: bounded and small.
	probe := []byte("spike-probe")
	want := fmt.Sprintf("t=%d", time.Now().UnixNano())
	if err := c.Put(probe, []byte(want)); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for {
		v, ok, _ := r1.Get(probe)
		if ok && string(v) == want {
			break
		}
		if time.Since(start) > 2*time.Second {
			log.Fatal("replica lag exceeded 2s")
		}
	}
	fmt.Printf("replica caught up %v after commit (lag LSNs now: r1=%d r2=%d)\n",
		time.Since(start), r1.Lag(c), r2.Lag(c))
	fmt.Printf("cluster: %+v\n", c.Stats())
}

func key(p int) []byte { return []byte(fmt.Sprintf("player:%06d", p)) }
