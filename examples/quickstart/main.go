// Quickstart: create an Aurora cluster, write and read data, use
// transactions and snapshots, inspect the log-is-the-database machinery,
// survive an AZ failure, and fail over after a writer crash.
package main

import (
	"fmt"
	"log"

	"aurora"
)

func main() {
	// A cluster is three simulated availability zones, a storage fleet of
	// 4 protection groups x 6 segment replicas, an S3-style backup store,
	// and a single writer instance.
	c, err := aurora.NewCluster(aurora.Options{Name: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Autocommit writes: each returns once the commit record is durable on
	// a 4/6 write quorum (the VDL has passed it).
	if err := c.Put([]byte("user:1"), []byte("ada")); err != nil {
		log.Fatal(err)
	}
	if err := c.Put([]byte("user:2"), []byte("grace")); err != nil {
		log.Fatal(err)
	}
	v, _, err := c.Get([]byte("user:1"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:1 = %s\n", v)

	// Multi-row transaction: writes buffer privately under row locks and
	// become one atomic mini-transaction at commit.
	tx := c.Begin()
	if err := tx.Put([]byte("acct:a"), []byte("90")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Put([]byte("acct:b"), []byte("110")); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Snapshot transactions read a frozen view at a registered read point,
	// served by the storage fleet at that LSN.
	snap := c.BeginSnapshot()
	if err := c.Put([]byte("acct:a"), []byte("0")); err != nil {
		log.Fatal(err)
	}
	old, _, _ := snap.Get([]byte("acct:a"))
	cur, _, _ := c.Get([]byte("acct:a"))
	fmt.Printf("snapshot sees acct:a=%s, latest is %s\n", old, cur)
	snap.Abort()

	// Ordered range scan.
	fmt.Println("scan acct:*")
	if err := c.Scan([]byte("acct:"), []byte("acct;"), func(k, v []byte) bool {
		fmt.Printf("  %s = %s\n", k, v)
		return true
	}); err != nil {
		log.Fatal(err)
	}

	// An entire availability zone fails: the 4/6 quorum keeps writing.
	c.FailAZ(2, true)
	if err := c.Put([]byte("during-az-outage"), []byte("still writing")); err != nil {
		log.Fatal(err)
	}
	c.FailAZ(2, false)
	fmt.Println("wrote through an AZ outage")

	s := c.Stats()
	fmt.Printf("before crash: commits=%d vdl=%d network messages=%d bytes=%d\n",
		s.Commits, s.VDL, s.NetworkMessages, s.NetworkBytes)

	// The writer crashes. Recovery contacts a read quorum per protection
	// group, re-establishes the durable points and truncates the tail —
	// no redo replay, because redo application lives on the storage fleet.
	c.CrashWriter()
	rep, err := c.Failover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failover: recovered VDL=%d epoch=%d in %v (no redo replay)\n",
		rep.VDL, rep.Epoch, rep.Duration)
	v, _, _ = c.Get([]byte("user:2"))
	fmt.Printf("user:2 after failover = %s\n", v)

}
