// Chaos drill: the operational story of §2 — storage node crashes, an AZ
// outage, segment wipe and re-replication, writer failover, and a
// zero-downtime patch, all while a workload keeps verifying its own data.
package main

import (
	"fmt"
	"log"
	"time"

	"aurora"
)

func main() {
	c, err := aurora.NewCluster(aurora.Options{Name: "drill", PGs: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	expected := map[string]string{}
	write := func(k, v string) {
		if err := c.Put([]byte(k), []byte(v)); err != nil {
			log.Fatalf("write %s during drill: %v", k, err)
		}
		expected[k] = v
	}
	verify := func(stage string) {
		for k, want := range expected {
			got, ok, err := c.Get([]byte(k))
			if err != nil || !ok || string(got) != want {
				log.Fatalf("%s: key %s = %q/%v/%v, want %q", stage, k, got, ok, err, want)
			}
		}
		fmt.Printf("  ✓ %s: all %d keys intact\n", stage, len(expected))
	}

	for i := 0; i < 40; i++ {
		write(fmt.Sprintf("row-%02d", i), fmt.Sprintf("v%d", i))
	}
	verify("baseline")

	fmt.Println("drill 1: crash two storage nodes (different PGs)")
	c.CrashStorageNode(0, 3, true)
	c.CrashStorageNode(1, 0, true)
	write("during-node-crash", "ok")
	verify("two nodes down")
	c.CrashStorageNode(0, 3, false)
	c.CrashStorageNode(1, 0, false)

	fmt.Println("drill 2: lose an entire availability zone")
	c.FailAZ(1, true)
	write("during-az-down", "ok")
	verify("AZ down")
	c.FailAZ(1, false)

	fmt.Println("drill 3: AZ down PLUS one more node — writes must stall, reads survive")
	c.FailAZ(2, true)
	c.CrashStorageNode(0, 0, true)
	if err := c.Put([]byte("should-fail"), []byte("x")); err == nil {
		log.Fatal("AZ+1 write unexpectedly succeeded")
	}
	fmt.Println("  ✓ write correctly refused without quorum")
	if _, ok, err := c.Get([]byte("row-07")); err != nil || !ok {
		log.Fatalf("read during AZ+1: %v", err)
	}
	fmt.Println("  ✓ reads survive AZ+1 (read availability, §2.1)")
	c.FailAZ(2, false)
	c.CrashStorageNode(0, 0, false)

	// Writer degraded after the failed quorum write: fail over.
	rep, err := c.Failover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ✓ failover after quorum loss: VDL=%d epoch=%d in %v\n", rep.VDL, rep.Epoch, rep.Duration)
	verify("after failover")

	fmt.Println("drill 4: writer crash + recovery")
	write("pre-crash", "durable")
	c.CrashWriter()
	rep, err = c.Failover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ✓ recovered in %v, contacted %d storage nodes, no redo replay\n",
		rep.Duration, rep.NodesContacted)
	verify("after crash recovery")

	fmt.Println("drill 5: zero-downtime patch with live sessions")
	id := c.Proxy().Connect()
	if err := c.Proxy().SetVar(id, "session-var", "survives"); err != nil {
		log.Fatal(err)
	}
	sessions, pause, err := c.Patch(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := c.Proxy().Var(id, "session-var")
	fmt.Printf("  ✓ patched: %d session(s) preserved (var=%q), pause %v\n", sessions, v, pause)
	write("post-patch", "ok")
	verify("after patch")

	fmt.Println("all drills passed")
}
