// aurora-bench regenerates the paper's tables and figures against the
// simulated substrate and prints them.
//
// Usage:
//
//	aurora-bench                        # run every experiment at full scale
//	aurora-bench -exp table1            # one experiment
//	aurora-bench -exp table1,table3     # a comma-separated subset
//	aurora-bench -quick                 # CI-sized runs
//	aurora-bench -trace                 # commit-latency attribution (tracing)
//	aurora-bench -json results.json     # also write results as JSON
//	aurora-bench -list                  # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"aurora/internal/harness"
)

// runRecord is one experiment's JSON output: the Result plus wall time.
type runRecord struct {
	*harness.Result
	ElapsedMS int64 `json:"ElapsedMS"`
}

func main() {
	exp := flag.String("exp", "", "experiment id(s) to run, comma-separated (default: all)")
	quick := flag.Bool("quick", false, "CI-sized scale instead of full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonOut := flag.String("json", "", "write results to this file as JSON")
	traceMode := flag.Bool("trace", false, "run the latency-attribution experiment (per-stage table + exemplar trace trees)")
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(harness.Registry))
		for id := range harness.Registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	scale := harness.Full()
	if *quick {
		scale = harness.Quick()
	}

	var records []runRecord
	run := func(id string) {
		fn, ok := harness.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res := fn(scale)
		elapsed := time.Since(start)
		res.Print(os.Stdout)
		fmt.Printf("  [%s in %v]\n", id, elapsed.Round(time.Millisecond))
		records = append(records, runRecord{Result: res, ElapsedMS: elapsed.Milliseconds()})
	}

	ids := harness.Order
	if *traceMode {
		ids = []string{"latency"}
	} else if *exp != "" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	} else {
		fmt.Printf("aurora-bench: reproducing the SIGMOD'17 evaluation (scale: %+v)\n", scale)
	}
	for _, id := range ids {
		run(id)
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal results: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d result(s) to %s\n", len(records), *jsonOut)
	}
}
