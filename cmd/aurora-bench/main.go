// aurora-bench regenerates the paper's tables and figures against the
// simulated substrate and prints them.
//
// Usage:
//
//	aurora-bench                  # run every experiment at full scale
//	aurora-bench -exp table1      # one experiment
//	aurora-bench -quick           # CI-sized runs
//	aurora-bench -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"aurora/internal/harness"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	quick := flag.Bool("quick", false, "CI-sized scale instead of full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		ids := make([]string, 0, len(harness.Registry))
		for id := range harness.Registry {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}

	scale := harness.Full()
	if *quick {
		scale = harness.Quick()
	}

	run := func(id string) {
		fn, ok := harness.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		res := fn(scale)
		res.Print(os.Stdout)
		fmt.Printf("  [%s in %v]\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *exp != "" {
		run(*exp)
		return
	}
	fmt.Printf("aurora-bench: reproducing the SIGMOD'17 evaluation (scale: %+v)\n", scale)
	for _, id := range harness.Order {
		run(id)
	}
}
