// aurora-demo is a guided tour of the log-is-the-database architecture: it
// narrates what crosses the network on each operation, shows the
// consistency points advancing, runs a replica, and walks through a crash
// recovery — the paper's §3–§4, live.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"aurora"
)

func main() {
	pgs := flag.Int("pgs", 4, "protection groups")
	flag.Parse()

	fmt.Println("Aurora reproduction — guided demo")
	fmt.Println("=================================")
	c, err := aurora.NewCluster(aurora.Options{Name: "demo", PGs: *pgs})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	fmt.Printf("provisioned: 3 AZs, %d protection groups x 6 segment replicas, 1 writer\n\n", *pgs)

	step := func(title string, f func()) {
		before := c.Stats()
		f()
		after := c.Stats()
		fmt.Printf("» %s\n    network: +%d messages, +%d bytes; VDL %d -> %d\n\n",
			title, after.NetworkMessages-before.NetworkMessages,
			after.NetworkBytes-before.NetworkBytes, before.VDL, after.VDL)
	}

	step("one durable write (only redo records cross the network)", func() {
		if err := c.Put([]byte("k1"), []byte("hello")); err != nil {
			log.Fatal(err)
		}
	})

	step("a 5-row transaction commits as one mini-transaction", func() {
		tx := c.Begin()
		for i := 0; i < 5; i++ {
			if err := tx.Put([]byte(fmt.Sprintf("row%d", i)), []byte("v")); err != nil {
				log.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	})

	step("a cached read costs nothing on the wire", func() {
		if _, _, err := c.Get([]byte("k1")); err != nil {
			log.Fatal(err)
		}
	})

	fmt.Println("attaching a read replica (no extra storage, no write cost)...")
	r, err := c.AddReplica("demo", 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Put([]byte("streamed"), []byte("to-replica")); err != nil {
		log.Fatal(err)
	}
	for {
		if v, ok, _ := r.Get([]byte("streamed")); ok && string(v) == "to-replica" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("replica caught up (lag: %d LSNs)\n\n", r.Lag(c))

	fmt.Println("failing an availability zone...")
	c.FailAZ(2, true)
	if err := c.Put([]byte("az-down"), []byte("still-writing")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote through the outage: 4/6 quorum tolerates a whole AZ")
	c.FailAZ(2, false)

	fmt.Println("\ncrashing the writer instance...")
	c.CrashWriter()
	start := time.Now()
	rep, err := c.Failover()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered in %v (measured %v): VDL=%d, epoch=%d, %d nodes contacted\n",
		rep.Duration, time.Since(start), rep.VDL, rep.Epoch, rep.NodesContacted)
	fmt.Println("no redo was replayed: redo application lives on the storage fleet")

	v, _, err := c.Get([]byte("az-down"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data intact after recovery: az-down = %q\n", v)

	s := c.Stats()
	fmt.Printf("\nfinal stats: commits=%d VDL=%d messages=%d bytes=%d backups=%d\n",
		s.Commits, s.VDL, s.NetworkMessages, s.NetworkBytes, s.BackupObjects)
}
