// aurora-chaos runs a randomized fault-injection campaign against a full
// Aurora stack: node crashes, AZ outages, segment wipes with repair, slow
// disks and page corruption, all while a probe workload verifies that
// committed data is never lost or wrong (§2's operational claims).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"aurora/internal/chaos"
	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

func main() {
	rounds := flag.Int("rounds", 5, "fault rounds")
	seed := flag.Int64("seed", 7, "rng seed")
	hold := flag.Duration("hold", 50*time.Millisecond, "how long each fault stays active")
	flag.Parse()

	net := netsim.New(netsim.Datacenter())
	fleet, err := volume.NewFleet(volume.FleetConfig{Name: "chaos", PGs: 4, Net: net, Disk: disk.FastLocal()})
	if err != nil {
		log.Fatal(err)
	}
	vol := volume.Bootstrap(fleet, volume.ClientConfig{WriterNode: "chaos-writer", WriterAZ: 0})
	db, err := engine.Create(vol, engine.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fleet.Start()
	defer fleet.Stop()

	rng := rand.New(rand.NewSource(*seed))
	var faults []chaos.Fault
	for i := 0; i < *rounds; i++ {
		pg := core.PGID(rng.Intn(fleet.PGs()))
		replica := rng.Intn(6)
		switch rng.Intn(4) {
		case 0:
			faults = append(faults, chaos.CrashNode(fleet, pg, replica))
		case 1:
			faults = append(faults, chaos.AZOutage(net, netsim.AZ(1+rng.Intn(2)))) // never the writer's AZ
		case 2:
			faults = append(faults, chaos.WipeAndRepairNode(fleet, pg, replica))
		case 3:
			faults = append(faults, chaos.SlowDisk(fleet, pg, replica))
		}
	}

	fmt.Printf("chaos campaign: %d faults, %v hold, seed %d\n", len(faults), *hold, *seed)
	for _, f := range faults {
		fmt.Printf("  - %s\n", f.Name)
	}
	runner := &chaos.Runner{DB: db, Faults: faults, HoldFor: *hold, Seed: *seed}
	rep := runner.Run()

	fmt.Printf("\nresults:\n")
	fmt.Printf("  faults injected : %d\n", rep.FaultsInjected)
	fmt.Printf("  writes          : %d ok / %d attempted\n", rep.WritesOK, rep.WritesAttempted)
	fmt.Printf("  reads           : %d ok / %d attempted\n", rep.ReadsOK, rep.ReadsAttempted)
	fmt.Printf("  data errors     : %d\n", rep.DataErrors)
	if rep.DataErrors > 0 {
		fmt.Println("FAIL: committed data was lost or wrong")
		os.Exit(1)
	}
	fmt.Println("PASS: no committed data lost under chaos")
}
