// aurora-chaos runs a randomized fault-injection campaign against a full
// Aurora stack: node crashes, AZ outages, segment wipes with repair, slow
// disks and page corruption, plus the gray regime — probabilistic packet
// loss and slow-but-alive nodes — all while a probe workload verifies that
// committed data is never lost or wrong (§2's operational claims) and that
// the gray-failure machinery (write retry, hedged reads, self-driven
// repair) actually engaged.
//
// With -matrix it instead runs the seeded integrity scenario matrix
// (internal/chaos/matrix): faults × stressors, each scenario on its own
// cluster with a checksumming workload, ending in a pass/fail/flaky
// cross-tab. Failures print a one-line replay command carrying the seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"aurora/internal/chaos"
	"aurora/internal/chaos/matrix"
	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/volume"
)

func main() {
	rounds := flag.Int("rounds", 5, "random fault rounds")
	seed := flag.Int64("seed", 7, "rng seed")
	probes := flag.Int("probes", 40, "probe rounds per active fault (deterministic pacing)")
	gray := flag.Bool("gray", true, "include the gray regime: packet loss, gray-slow replicas, self-healed wipe")
	matrixMode := flag.Bool("matrix", false, "run the integrity scenario matrix instead of the drill")
	tier := flag.String("tier", "smoke", "matrix tier: smoke (12 scenarios) or full (96)")
	count := flag.Int("count", 0, "matrix scenario count override (0 = tier default)")
	only := flag.String("only", "", "matrix filter: run only scenarios whose fault/stressor name contains this")
	md := flag.String("md", "", "write the matrix results table to this markdown file")
	flag.Parse()

	if *matrixMode {
		runMatrix(*seed, *tier, *count, *only, *md)
		return
	}

	net := netsim.New(netsim.Datacenter())
	fleet, err := volume.NewFleet(volume.FleetConfig{Name: "chaos", Geometry: core.UniformGeometry(4), Net: net, Disk: disk.FastLocal()})
	if err != nil {
		log.Fatal(err)
	}
	vol := volume.Bootstrap(fleet, volume.ClientConfig{WriterNode: "chaos-writer", WriterAZ: 0})
	db, err := engine.Create(vol, engine.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fleet.Start()
	defer fleet.Stop()

	rng := rand.New(rand.NewSource(*seed))
	var faults []chaos.Fault
	if *gray {
		// The gray regime: 10% packet loss fleet-wide plus one gray-slow
		// replica per PG (always a same-AZ one, so it would be the
		// preferred read target without health-ordered hedging).
		regime := []chaos.Fault{chaos.PacketLoss(net, 0.10)}
		for pg := 0; pg < fleet.PGs(); pg++ {
			slow := fleet.Node(core.PGID(pg), pg%2)
			regime = append(regime, chaos.GraySlowNode(net, slow.NodeID(), chaos.GraySlowDelay()))
		}
		faults = append(faults, chaos.Compose("gray regime: 10% loss + slow replicas", regime...))
		// One wipe healed only by the fleet's own repair monitor. PG0 holds
		// the btree root, so every probe write ships it a delta and the
		// wiped replica's failure streak is guaranteed to build.
		faults = append(faults, chaos.WipeNode(fleet, 0, rng.Intn(6)))
	}
	for i := 0; i < *rounds; i++ {
		pg := core.PGID(rng.Intn(fleet.PGs()))
		replica := rng.Intn(6)
		switch rng.Intn(4) {
		case 0:
			faults = append(faults, chaos.CrashNode(fleet, pg, replica))
		case 1:
			faults = append(faults, chaos.AZOutage(net, netsim.AZ(1+rng.Intn(2)))) // never the writer's AZ
		case 2:
			faults = append(faults, chaos.WipeAndRepairNode(fleet, pg, replica))
		case 3:
			faults = append(faults, chaos.SlowDisk(fleet, pg, replica))
		}
	}

	fmt.Printf("chaos campaign: %d faults, %d probes/fault, seed %d\n", len(faults), *probes, *seed)
	for _, f := range faults {
		fmt.Printf("  - %s\n", f.Name)
	}
	runner := &chaos.Runner{DB: db, Faults: faults, ProbesPerFault: *probes, Seed: *seed}
	rep := runner.Run()

	// Give the self-driven repair monitor a bounded window to finish any
	// in-flight catch-up before reading the counters.
	if *gray {
		deadline := time.Now().Add(chaos.SettleTimeout())
		for fleet.Health().Stats().AutoRepairs == 0 && time.Now().Before(deadline) {
			time.Sleep(chaos.PollInterval())
		}
	}
	hs := fleet.Health().Stats()

	fmt.Printf("\nresults:\n")
	fmt.Printf("  faults injected : %d\n", rep.FaultsInjected)
	fmt.Printf("  writes          : %d ok / %d attempted\n", rep.WritesOK, rep.WritesAttempted)
	fmt.Printf("  reads           : %d ok / %d attempted\n", rep.ReadsOK, rep.ReadsAttempted)
	fmt.Printf("  data errors     : %d\n", rep.DataErrors)
	fmt.Printf("  write retries   : %d\n", hs.Retries)
	fmt.Printf("  hedged reads    : %d launched, %d won\n", hs.Hedges, hs.HedgeWins)
	fmt.Printf("  auto repairs    : %d\n", hs.AutoRepairs)
	fmt.Printf("  resp drops      : %d\n", hs.RespDrops)
	fmt.Printf("  volume reads    : %d served\n", vol.Stats().ReadsServed)
	for _, e := range rep.HealErrors {
		fmt.Printf("  heal error      : %v\n", e)
	}

	fail := func(msg string) {
		fmt.Printf("FAIL: %s\n", msg)
		os.Exit(1)
	}
	if rep.DataErrors > 0 {
		fail("committed data was lost or wrong")
	}
	if rep.WritesOK*100 < rep.WritesAttempted*99 {
		fail(fmt.Sprintf("write success rate %.2f%% below 99%%",
			100*float64(rep.WritesOK)/float64(rep.WritesAttempted)))
	}
	if *gray {
		if hs.Retries == 0 {
			fail("gray regime ran but the write path never retried")
		}
		if hs.Hedges == 0 {
			fail("gray regime ran but no read was ever hedged")
		}
		if hs.AutoRepairs == 0 {
			fail("wiped segment was never self-repaired")
		}
		fmt.Println("PASS: no committed data lost under chaos; gray-failure machinery engaged")
		return
	}
	fmt.Println("PASS: no committed data lost under chaos")
}

// runMatrix executes the scenario matrix and renders its verdict: the
// cross-tab, the summary with replay commands, and optionally a markdown
// file for EXPERIMENTS.md.
func runMatrix(seed int64, tier string, count int, only, md string) {
	cfg := matrix.Config{Seed: seed, Tier: tier, Count: count, Only: only, Out: os.Stdout}
	fmt.Printf("integrity matrix: tier=%s seed=%d\n", tier, seed)
	res, err := matrix.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\n%s", res.Table(), res.Summary())
	if md != "" {
		out := fmt.Sprintf("Tier %s, seed %d, %d scenarios.\n\n%s\n", res.Tier, res.Seed, len(res.Scenarios), res.Table())
		if err := os.WriteFile(md, []byte(out), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	if !res.Passed() {
		fmt.Println("FAIL: integrity violations above; replay commands included")
		os.Exit(1)
	}
	if res.Flaky() {
		fmt.Println("PASS (with flaky scenarios — see table)")
		return
	}
	fmt.Println("PASS: all scenarios held every integrity invariant")
}
