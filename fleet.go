// Multi-tenant entry points: one StorageFleet shared by many independent
// volumes, the deployment shape of Aurora's actual storage service (§1:
// "thousands of customer volumes" per fleet). Each OpenVolume call gets a
// full Cluster — its own writer, LSN space, geometry and backups — whose
// segments are placed across the fleet's shared hosts with AZ-spread and
// blast-radius limits, and whose traffic is fair-share scheduled against
// every other tenant's by the hosts' QoS.

package aurora

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"aurora/internal/core"
	"aurora/internal/disk"
	"aurora/internal/engine"
	"aurora/internal/netsim"
	"aurora/internal/objstore"
	"aurora/internal/quorum"
	"aurora/internal/storage"
	"aurora/internal/volume"
	"aurora/internal/zdp"
)

// FleetOptions configures a shared multi-tenant storage fleet. The zero
// value is a working configuration: 9 hosts across 3 AZs, fast local
// network and disks, backups on, QoS shaping off.
type FleetOptions struct {
	// Name prefixes every host's network identity (default "fleet").
	Name string
	// Hosts is the number of physical storage machines, spread round-robin
	// over the three AZs (default 9). Must be >= the replication factor so
	// every protection group can spread per the quorum's AZ rules.
	Hosts int
	// Network selects the latency model shared by every tenant.
	Network NetworkProfile
	// RealisticDisks enables NVMe-like latencies on the hosts' SSDs.
	RealisticDisks bool
	// DisableBackup turns off the shared object store (and thus PITR).
	DisableBackup bool

	// --- Per-tenant QoS (per host; zero disables shaping on that path) ---

	// IngestBytesPerSec is each host's total foreground ingest budget,
	// fair-shared across its active tenants; a hot tenant is throttled to
	// capacity/activeTenants while idle capacity flows to whoever is busy.
	IngestBytesPerSec float64
	// ReadsPerSec is each host's foreground page-read budget, fair-shared
	// the same way.
	ReadsPerSec float64
	// Burst is how far one tenant may run ahead of its fair share before
	// shaping kicks in (bytes; 0 selects the default).
	Burst float64
	// MaxQueue caps each tenant's shaped-operation queue per host; beyond
	// it writes are rejected and retried by the tenant's own sender.
	MaxQueue int
}

// StorageFleet is a shared multi-tenant storage deployment: one network,
// one pool of storage hosts, one object store — many volumes.
type StorageFleet struct {
	opts  FleetOptions
	net   *netsim.Network
	pool  *storage.Pool
	store *objstore.Store

	mu      sync.Mutex
	nextVol core.VolumeID
	tenants map[core.VolumeID]*Cluster
	names   map[string]bool
	closed  bool
}

// NewStorageFleet provisions the shared hosts. Volumes are added with
// OpenVolume.
func NewStorageFleet(opts FleetOptions) (*StorageFleet, error) {
	if opts.Name == "" {
		opts.Name = "fleet"
	}
	if opts.Hosts == 0 {
		opts.Hosts = 9
	}
	if opts.Hosts < 3 {
		return nil, &OptionError{Field: "Hosts", Reason: "need at least one host per AZ (3)"}
	}
	if opts.Network != NetFast && opts.Network != NetDatacenter {
		return nil, &OptionError{Field: "Network", Reason: "unknown network profile"}
	}
	var netCfg netsim.Config
	switch opts.Network {
	case NetDatacenter:
		netCfg = netsim.Datacenter()
	default:
		netCfg = netsim.FastLocal()
	}
	net := netsim.New(netCfg)
	var store *objstore.Store
	if !opts.DisableBackup {
		store = objstore.New()
	}
	dcfg := disk.FastLocal()
	if opts.RealisticDisks {
		dcfg = disk.NVMe()
	}
	pool := storage.NewPool(storage.PoolConfig{
		Name:  opts.Name,
		Hosts: opts.Hosts,
		Net:   net,
		Disk:  dcfg,
		Store: store,
		QoS: storage.QoSConfig{
			IngestBytesPerSec: opts.IngestBytesPerSec,
			ReadsPerSec:       opts.ReadsPerSec,
			Burst:             opts.Burst,
			MaxQueue:          opts.MaxQueue,
		},
	})
	return &StorageFleet{
		opts:    opts,
		net:     net,
		pool:    pool,
		store:   store,
		tenants: make(map[core.VolumeID]*Cluster),
		names:   make(map[string]bool),
	}, nil
}

// Hosts returns the number of physical storage machines in the fleet.
func (f *StorageFleet) Hosts() int { return f.opts.Hosts }

// OpenVolume provisions a new tenant volume on the shared fleet and attaches
// a full cluster to it: its own writer instance, LSN space, geometry and
// namespaced backups, with segments placed across the shared hosts. The
// volume's name must be unique within the fleet (it namespaces the writer's
// network identity). Topology fields of opts that belong to the fleet —
// Network, RealisticDisks, DisableBackup — are ignored; the fleet's own
// settings apply.
func (f *StorageFleet) OpenVolume(name string, opts Options) (*Cluster, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if name == "" {
		return nil, &OptionError{Field: "Name", Reason: "volume name required"}
	}
	if opts.PGs == 0 {
		opts.PGs = 4
	}
	opts.Name = name
	opts.Network = f.opts.Network
	opts.RealisticDisks = f.opts.RealisticDisks
	opts.DisableBackup = f.opts.DisableBackup

	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, errors.New("aurora: storage fleet closed")
	}
	if f.names[name] {
		f.mu.Unlock()
		return nil, fmt.Errorf("aurora: volume %q already open on this fleet", name)
	}
	f.nextVol++
	vol := f.nextVol
	f.names[name] = true
	f.mu.Unlock()

	var q quorum.Config
	if opts.LogSplit {
		q = quorum.TaurusMix()
	}
	fleet, err := volume.NewFleet(volume.FleetConfig{
		Name: name, Vol: vol, Pool: f.pool,
		Geometry: core.UniformGeometry(opts.PGs),
		Net:      f.net, Store: f.store, Quorum: q,
	})
	if err != nil {
		f.forgetName(name)
		return nil, err
	}
	writer := volume.Bootstrap(fleet, volume.ClientConfig{
		WriterNode: netsim.NodeID(name + "-writer"), WriterAZ: 0,
	})
	db, err := engine.Create(writer, engine.Config{
		CachePages: opts.CachePages, LockTimeout: opts.LockTimeout,
		TraceEvery: opts.TraceEvery,
	})
	if err != nil {
		writer.Close()
		fleet.Stop()
		f.forgetName(name)
		return nil, err
	}
	if !opts.DisableBackground {
		fleet.Start()
	}
	c := &Cluster{
		opts:  opts,
		net:   f.net,
		fleet: fleet,
		store: f.store,
		db:    db,
		proxy: zdp.NewProxy(db),
	}
	f.mu.Lock()
	f.tenants[vol] = c
	f.mu.Unlock()
	return c, nil
}

func (f *StorageFleet) forgetName(name string) {
	f.mu.Lock()
	delete(f.names, name)
	f.mu.Unlock()
}

// TenantQoS aggregates one tenant's QoS counters across every host it
// touches: admitted work, fair-share throttling delays, and queue-cap
// rejections. Nonzero Throttles/Rejects on one tenant with quiet numbers on
// the others is the noisy-neighbor containment signature.
type TenantQoS struct {
	IngestBytes  uint64
	Reads        uint64
	Throttles    uint64
	Rejects      uint64
	ThrottleWait time.Duration
}

// TenantStats snapshots per-tenant QoS counters across the fleet's hosts,
// keyed by volume ID.
func (f *StorageFleet) TenantStats() map[uint32]TenantQoS {
	out := make(map[uint32]TenantQoS)
	for vol, st := range f.pool.TenantStats() {
		out[uint32(vol)] = TenantQoS{
			IngestBytes:  st.IngestBytes,
			Reads:        st.Reads,
			Throttles:    st.Throttles,
			Rejects:      st.Rejects,
			ThrottleWait: st.ThrottleWait,
		}
	}
	return out
}

// Close shuts down every open tenant cluster.
func (f *StorageFleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	tenants := make([]*Cluster, 0, len(f.tenants))
	for _, c := range f.tenants {
		tenants = append(tenants, c)
	}
	f.mu.Unlock()
	for _, c := range tenants {
		c.Close()
	}
}
