GO ?= go

.PHONY: all build vet test race chaos-smoke chaos-grow examples-smoke bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Tier-1: the suite that must stay green on every change.
test: build vet
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages.
race:
	$(GO) test -race ./internal/trace/ ./internal/volume/ ./internal/chaos/ \
		./internal/storage/ ./internal/netsim/ ./internal/metrics/ \
		./internal/quorum/ ./internal/engine/

# Short gray-failure drill: fails unless zero data errors, >=99% write
# success, and the retry / hedge / auto-repair machinery all engaged.
chaos-smoke:
	$(GO) run ./cmd/aurora-chaos -rounds 4 -probes 25 -seed 7

# Live volume growth under chaos: grow mid-workload with a gray-slow node,
# under the race detector. Zero failed commits, monotone VDL, no lost writes.
chaos-grow:
	$(GO) test -race -count=1 -run 'TestGrow' ./internal/volume/
	$(GO) test -race -count=1 -run 'TestGrowVolumeLive' .

# The runnable examples must keep working as the public API evolves.
examples-smoke:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pitr

# Quick benchmark snapshot for this PR: the throughput tables most
# sensitive to the commit pipeline, written as JSON for comparison.
bench:
	$(GO) run ./cmd/aurora-bench -quick -exp table1,table3 -json BENCH_2.json

ci: test race chaos-smoke chaos-grow examples-smoke
