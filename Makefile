GO ?= go

.PHONY: all build vet lint test race chaos-smoke chaos-grow chaos-deadline chaos-matrix-smoke chaos-matrix examples-smoke bench bench-allocs bench-logsplit bench-tenants bench-autotune tenants-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Guardrails for the deadline/cancellation refactor: no context.TODO()
# anywhere, no resurrected *Traced duplicate APIs (spans ride in ctx now),
# and no bare sleeps in non-test engine/volume/storage code — every wait on
# those paths must select on a context.
lint:
	@if grep -rn 'context\.TODO()' --include='*.go' . ; then \
		echo 'lint: context.TODO() is forbidden — plumb a real context'; exit 1; fi
	@if grep -rn 'Traced(' internal --include='*.go' | grep -v _test ; then \
		echo 'lint: *Traced( API resurrected — carry the span in the context'; exit 1; fi
	@if grep -rn 'time\.Sleep' internal/engine internal/volume internal/storage --include='*.go' | grep -v _test ; then \
		echo 'lint: time.Sleep in engine/volume/storage — waits must select on a ctx'; exit 1; fi
	@if grep -rnE 'maxInflightGroups|deliverMaxBackoff|hedgeMult *\*|maxGroup +int' internal/engine internal/volume --include='*.go' | grep -v _test | grep -vE 'internal/control|MaxInflightGroups|hedgeMultPct' ; then \
		echo 'lint: hardcoded tuning constant resurrected — latency knobs live in internal/control'; exit 1; fi

# Tier-1: the suite that must stay green on every change.
test: build vet lint
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages.
race:
	$(GO) test -race ./internal/core/ ./internal/trace/ ./internal/volume/ \
		./internal/chaos/ ./internal/chaos/matrix/ ./internal/storage/ \
		./internal/netsim/ ./internal/metrics/ ./internal/quorum/ \
		./internal/engine/ ./internal/control/

# Short gray-failure drill: fails unless zero data errors, >=99% write
# success, and the retry / hedge / auto-repair machinery all engaged.
chaos-smoke:
	$(GO) run ./cmd/aurora-chaos -rounds 4 -probes 25 -seed 7

# Live volume growth under chaos: grow mid-workload with a gray-slow node,
# under the race detector. Zero failed commits, monotone VDL, no lost writes.
chaos-grow:
	$(GO) test -race -count=1 -run 'TestGrow' ./internal/volume/
	$(GO) test -race -count=1 -run 'TestGrowVolumeLive' .

# Deadline-vs-durability drill under a gray-slow node, with the race
# detector: a detached commit still becomes durable, VDL stays monotone,
# winning hedges cancel their losers, Close leaks no goroutines.
chaos-deadline:
	$(GO) test -race -count=1 -run 'TestCommitDeadlineUnderGraySlowNode' ./internal/chaos/
	$(GO) test -race -count=1 -run 'TestNoGoroutineLeaks' ./internal/integration/

# Seeded integrity scenario matrix (faults × stressors), CI tier: 12
# scenarios under the race detector, zero checksum mismatches / lost acked
# commits / VDL regressions / goroutine leaks required. Failures print a
# one-line replay command carrying the seed. The pinned runs sweep one full
# matrix (count 44) filtered to the pagestore-lag fault (log/page role
# split), the noisy-neighbor fault (co-tenant flood on a shared pool) and
# the autotune fault (gray-slow + flood with the adaptive controller live)
# across all four stressors — the smoke draw does not always include them.
chaos-matrix-smoke:
	$(GO) run -race ./cmd/aurora-chaos -matrix -tier smoke -seed 1
	$(GO) run -race ./cmd/aurora-chaos -matrix -tier smoke -seed 1 -count 44 -only pagestore-lag
	$(GO) run -race ./cmd/aurora-chaos -matrix -tier smoke -seed 1 -count 44 -only noisy-neighbor
	$(GO) run -race ./cmd/aurora-chaos -matrix -tier smoke -seed 1 -count 44 -only autotune

# Nightly tier: three full sweeps of the matrix (132 scenarios).
chaos-matrix:
	$(GO) run -race ./cmd/aurora-chaos -matrix -tier full -seed 1

# The runnable examples must keep working as the public API evolves.
examples-smoke:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pitr

# Quick benchmark snapshot for this PR: the throughput tables most
# sensitive to the commit pipeline, written as JSON for comparison.
bench:
	$(GO) run ./cmd/aurora-bench -quick -exp table1,table3 -json BENCH_9.json

# Zero-allocation log hot path guardrail: the encode/frame pins must stay at
# exactly zero allocations and the full commit steady state under one
# allocation per record (0 allocs/record amortized). Fails CI on regression.
bench-allocs:
	$(GO) test -run 'TestRecordBodyEncodeZeroAllocs|TestFrameGroupSteadyStateZeroAllocs' -count=1 ./internal/core/
	$(GO) test -run 'TestCommitSteadyStateAllocs' -count=1 ./internal/volume/
	$(GO) test -run xxx -bench 'BenchmarkRecordBodyEncode|BenchmarkFrameGroup$$|BenchmarkCommitSteadyStateAllocs' -benchtime 100x ./internal/core/ ./internal/volume/

# Log/page role split vs the classic 4/6 quorum at 160 connections on the
# NVMe disk model: sync bytes per commit, commit p50/p95, throughput.
bench-logsplit:
	$(GO) run ./cmd/aurora-bench -exp logsplit

# Adaptive control plane vs static knobs at 160 connections: commit.queue
# critical-path share, commit p50/p95, writes/sec, knob trajectory. JSON for
# comparison across PRs.
bench-autotune:
	$(GO) run ./cmd/aurora-bench -exp autotune -json BENCH_10.json

# Multi-tenant fleet benchmark: aggregate throughput scaling 1->4 tenants
# on shared hosts, plus the noisy-neighbor QoS containment run, written as
# JSON for comparison.
bench-tenants:
	$(GO) run ./cmd/aurora-bench -exp tenants -json BENCH_8.json

# CI-sized multi-tenant checks: the -race isolation regression (two volumes
# on one host fleet) plus a quick pass of the tenants experiment.
tenants-smoke:
	$(GO) test -race -count=1 -run 'TestTenant|TestPlacement|TestPooledFleet|TestWrongVolume' ./internal/volume/
	$(GO) run ./cmd/aurora-bench -quick -exp tenants

ci: test race bench-allocs chaos-smoke chaos-grow chaos-deadline chaos-matrix-smoke tenants-smoke examples-smoke
